"""Integration tests: the six ZooKeeper bugs of Table 4, the fix PRs of
Table 6 and the final resolution of §5.4.

Each test runs the BFS checker on the paper's most-efficient specification
for the bug (with ZK-4394 masked, as in §4.1) and asserts that the bug's
invariant family is the one violated.  These are the headline results of
the reproduction; the benchmarks regenerate the full tables with timing.
"""

import pytest

from repro.checker import BFSChecker
from repro.zookeeper import (
    FINAL_FIX,
    ZkConfig,
    final_fix_spec,
    mspec3_plus,
    pr_spec,
    zk4394_mask,
)
from repro.zookeeper import constants as C
from repro.zookeeper.specs import SELECTIONS, build_spec


def hunt(
    spec_name,
    config,
    family,
    instance=None,
    masked=True,
    max_states=3_000_000,
    max_time=300,
    variant=None,
):
    """BFS for the first violation of one invariant family."""
    if variant is not None:
        config = config.with_variant(variant)
    spec = build_spec(spec_name, SELECTIONS[spec_name], config)
    spec.invariants = [
        inv
        for inv in spec.invariants
        if inv.ident == family and (instance is None or inv.instance == instance)
    ]
    checker = BFSChecker(
        spec,
        max_states=max_states,
        max_time=max_time,
        mask=zk4394_mask if masked else None,
    )
    return checker.run()


class TestBugDetection:
    """Table 4: bug detection in ZooKeeper v3.9.1."""

    def test_zk4394_found_by_mspec1_unmasked(self):
        # Data sync failure: COMMIT between NEWLEADER and UPTODATE
        # throws NullPointerException (I-14).  mSpec-1* = unmasked.
        result = hunt(
            "mSpec-1",
            ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-14",
            instance=C.ERR_COMMIT_UNMATCHED_IN_SYNC,
            masked=False,
        )
        assert result.found_violation
        assert result.first_violation.depth <= 15

    def test_zk4394_masked_in_mspec1(self):
        # With the known bug masked, mSpec-1 finds nothing (Table 5).
        result = hunt(
            "mSpec-1",
            ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-14",
            masked=True,
            max_states=150_000,
            max_time=120,
        )
        assert not result.found_violation

    @pytest.mark.slow
    def test_zk4643_found_by_mspec2(self):
        # Data loss: crash between the epoch and history updates; the
        # stale follower wins the next election on its higher epoch and
        # truncates committed data (I-8).
        result = hunt(
            "mSpec-2",
            ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3),
            "I-8",
        )
        assert result.found_violation
        labels = [l.name for l in result.first_violation.trace.labels]
        assert "FollowerProcessNEWLEADER_UpdateEpoch" in labels
        assert "NodeCrash" in labels

    def test_zk4643_not_found_by_mspec1(self):
        # The baseline's atomic NEWLEADER hides the crash window.
        result = hunt(
            "mSpec-1",
            ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3),
            "I-8",
            max_states=200_000,
            max_time=120,
        )
        assert not result.found_violation

    @pytest.mark.slow
    def test_zk4646_found_by_mspec3(self):
        # Data loss: ACK of NEWLEADER before the SyncRequestProcessor
        # persisted the synced txns; crashes lose a committed txn (I-8).
        # The history-before-epoch ordering is applied so that the
        # ZK-4643 window cannot produce this I-8 violation instead.
        from repro.zookeeper import PR_1930

        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3),
            "I-8",
            variant=PR_1930,
        )
        assert result.found_violation
        labels = [l.name for l in result.first_violation.trace.labels]
        assert "FollowerProcessNEWLEADER_LogAsync" in labels

    def test_zk4646_not_found_with_synchronous_logging(self):
        from repro.zookeeper import PR_1993

        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3),
            "I-8",
            variant=PR_1993,
            max_states=250_000,
            max_time=200,
        )
        assert not result.found_violation

    @pytest.mark.slow
    def test_zk3023_found_by_mspec3(self):
        # Data sync failure: leader handles the ACK of UPTODATE while the
        # follower's CommitProcessor still has pending commits (I-11).
        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-11",
            instance=C.ERR_ACK_UPTODATE_OUT_OF_SYNC,
        )
        assert result.found_violation

    def test_zk4685_found_by_mspec3(self):
        # Data sync failure: the SyncRequestProcessor's per-txn ACK
        # overtakes the ACK of NEWLEADER (I-12).  Needs >= 2 txns so the
        # txn zxid differs from the NEWLEADER zxid.
        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=2, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-12",
            instance=C.ERR_ACK_BEFORE_NEWLEADER_ACK,
        )
        assert result.found_violation
        labels = [l.name for l in result.first_violation.trace.labels]
        assert labels[-2:] == [
            "FollowerSyncProcessorLogRequest",
            "LeaderProcessACK",
        ]

    @pytest.mark.slow
    def test_zk4712_found_by_mspec3(self):
        # Data inconsistency: the un-stopped SyncRequestProcessor logs a
        # stale request after data recovery (I-10).
        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=2, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-10",
            max_time=400,
        )
        assert result.found_violation
        labels = [l.name for l in result.first_violation.trace.labels]
        assert "FollowerShutdown" in labels

    def test_zk4712_not_found_with_fixed_shutdown(self):
        from repro.zookeeper import V391_PLUS_4712

        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=2, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-10",
            variant=V391_PLUS_4712,
            max_states=150_000,
            max_time=200,
        )
        assert not result.found_violation


class TestFixVerification:
    """Table 6: the four fix PRs still violate invariants."""

    CFG = ZkConfig(max_txns=2, max_crashes=2, max_partitions=0, max_epoch=3)

    def first_family(self, pr, max_states=400_000, max_time=200):
        spec = pr_spec(pr, self.CFG)
        result = BFSChecker(
            spec, max_states=max_states, max_time=max_time, mask=zk4394_mask
        ).run()
        assert result.found_violation, f"{pr} unexpectedly verified"
        return result.first_violation.invariant.ident

    @pytest.mark.slow
    def test_pr1848_still_violates(self):
        # PR-1848 fixed the DIFF ordering only; the SNAP path still opens
        # the ZK-4643 window (paper: I-8) and ZK-4685 remains reachable.
        assert self.first_family("PR-1848") in ("I-8", "I-12")

    def test_pr1848_snap_hole_violates_i8(self):
        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3),
            "I-8",
            variant=__import__("repro.zookeeper", fromlist=["PR_1848"]).PR_1848,
        )
        assert result.found_violation

    def test_pr1930_violates_i12(self):
        assert self.first_family("PR-1930") == "I-12"

    @pytest.mark.slow
    def test_pr1993_violates_i11(self):
        assert self.first_family("PR-1993") == "I-11"

    @pytest.mark.slow
    def test_pr2111_violates_i11(self):
        assert self.first_family("PR-2111") == "I-11"


class TestFinalFix:
    """§5.4: the holistic resolution passes model checking."""

    def test_no_violation_within_budget(self):
        cfg = ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3)
        result = BFSChecker(
            final_fix_spec(cfg), max_states=120_000, max_time=180
        ).run()
        assert not result.found_violation

    def test_final_fix_flags(self):
        assert FINAL_FIX.history_before_epoch == "full"
        assert FINAL_FIX.synchronous_sync_logging
        assert FINAL_FIX.synchronous_commit
        assert FINAL_FIX.fix_follower_shutdown
        assert FINAL_FIX.match_commit_in_sync

    def test_mspec3_plus_differs_from_mspec3_only_in_shutdown(self):
        spec = mspec3_plus()
        assert spec.config.variant.fix_follower_shutdown
        assert not spec.config.variant.synchronous_sync_logging


class TestExtensionZK4785:
    """Extension beyond the paper's six bugs: ZK-4785 (the paper's
    reference [26]) -- a COMMIT between NEWLEADER and UPTODATE applied
    directly to the log races the SyncRequestProcessor queue."""

    @pytest.mark.slow
    def test_direct_commit_application_violates_safety(self):
        from repro.zookeeper import V391_PLUS_4712

        variant = V391_PLUS_4712.with_(direct_commit_in_sync=True)
        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=2, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-10",
            variant=variant,
            max_time=400,
        )
        assert result.found_violation
        labels = [l.name for l in result.first_violation.trace.labels]
        assert "FollowerProcessCOMMITInSync" in labels

    def test_order_preserving_commit_is_safe(self):
        from repro.zookeeper import V391_PLUS_4712

        result = hunt(
            "mSpec-3",
            ZkConfig(max_txns=2, max_crashes=1, max_partitions=0, max_epoch=3),
            "I-10",
            variant=V391_PLUS_4712,
            max_states=150_000,
            max_time=200,
        )
        assert not result.found_violation
