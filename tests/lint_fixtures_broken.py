"""A deliberately non-conformant plugin: one trigger per C-rule.

Kept in its own module so its Scenario subclass (scanned through the
prefix builders' globals) cannot leak C02 findings into the conformant
fixture plugin next door.
"""

from __future__ import annotations

from repro.system.plugin import FaultSchedule, ROLE_LEADER, Scenario, SystemPlugin
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import State

from lint_fixtures import SCHEMA, FixtureConfig, _inc, _non_negative


def _foreign(config, state, i):
    return {"z": state["z"]}


# Masquerade as a repro package module that spec_source_packages does
# not cover: the C05 check keys on ``fn.__module__``.
_foreign.__module__ = "repro.lintfixture.ghost"


def make_broken_spec(config):
    inc = Action(
        "Inc",
        _inc,
        params={"i": lambda cfg: range(cfg.n_servers)},
        reads=["x"],
        writes=["x"],
    )
    foreign = Action(
        "Foreign",
        _foreign,
        params={"i": lambda cfg: range(cfg.n_servers)},
        reads=["z"],
        writes=["z"],
    )
    return Specification(
        "broken-fixture",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0, z=())],
        [Module("Counter", [inc, foreign])],
        [
            Invariant(
                "F-1", "NonNegative", _non_negative, reads=frozenset({"x"})
            )
        ],
        config,
    )


class BrokenDriver(Scenario):
    """Loops over a constant tuple containing an unknown action (C02)."""

    def haunt(self, leader):
        out = self
        for name in ("Phantom",):
            if out.can(name, i=leader):
                out = out.apply(name, i=leader)
        return out


def _ghost(spec, leader, quorum):
    scenario = BrokenDriver(spec)
    if scenario.can("Vanish", i=leader):
        scenario = scenario.apply("Vanish", i=leader)
    return scenario


class BrokenPlugin(SystemPlugin):
    """Every C-rule trips at least once."""

    name = "brokenfix"
    title = "lint fixture (broken)"
    grains = ("ok", "missing", "badmap")
    scenario_prefixes = {"ghost": _ghost}
    # No "none" schedule; unknown action, wrong parameter name and an
    # unknown role placeholder (C03 x4).
    fault_schedules = (
        FaultSchedule("crash-ghost", (("Ghost", (("i", ROLE_LEADER),)),)),
        FaultSchedule("bad-binding", (("Inc", (("who", ROLE_LEADER),)),)),
        FaultSchedule("bad-role", (("Inc", (("i", "bystander"),)),)),
    )
    compared_variables = ("x", "phantom")  # C04
    spec_source_packages = ()  # C05 via _foreign's module

    def default_config(self):
        return FixtureConfig()

    def make_spec(self, grain, config=None):
        if grain == "missing":
            raise KeyError(f"unknown or unmappable grain {grain!r}")  # C01
        return make_broken_spec(config or self.default_config())

    def make_mapping(self, grain):
        if grain != "ok":
            raise KeyError(f"no mapping for grain {grain!r}")  # C01
        return object()

    def budget_limits(self, config):
        return {"Ghost": 1}  # C06

    # config_from_meta deliberately not implemented -> C07.
