"""Scripted action-level tests for the Zab protocol specification."""

import pytest

from repro.zab import ZabConfig, zab_spec


def run(spec, state, name, **args):
    for inst in spec.action_instances():
        if inst.label.name == name and inst.label.args == args:
            nxt = inst.apply(spec.config, state)
            assert nxt is not None, f"{name}{args} not enabled"
            return nxt
    raise KeyError(f"{name}{args}")


def disabled(spec, state, name, **args):
    for inst in spec.action_instances():
        if inst.label.name == name and inst.label.args == args:
            return inst.apply(spec.config, state) is None
    raise KeyError(f"{name}{args}")


@pytest.fixture
def original():
    return zab_spec(ZabConfig(max_txns=2, max_crashes=1, variant="original"))


@pytest.fixture
def improved():
    return zab_spec(ZabConfig(max_txns=2, max_crashes=1, variant="improved"))


def oracle(spec, leader=2, quorum=(0, 1, 2)):
    state = spec.initial_states()[0]
    return run(spec, state, "ElectionOracle", i=leader, Q=tuple(quorum))


class TestElectionOracle:
    def test_elects_max_credential_holder(self, original):
        state = oracle(original)
        assert state["role"][2] == "LEADING"
        assert state["role"][0] == "FOLLOWING"
        assert state["epoch"] == (1, 1, 1)

    def test_sends_full_history_newleader(self, original):
        state = oracle(original)
        msg = state["msgs"][2][0][0]
        assert msg.mtype == "NEWLEADER"
        assert msg.hist == ()

    def test_refuses_stale_candidate(self, original):
        state = original.initial_states()[0]
        assert disabled(original, state, "ElectionOracle", i=0, Q=(0, 1, 2))


class TestPhase2Original:
    def test_atomic_accept(self, original):
        spec = original
        state = oracle(spec)
        state = run(spec, state, "FollowerAcceptNEWLEADER", pair=(0, 2))
        assert state["current_epoch"][0] == 1
        ack = state["msgs"][0][2][0]
        assert ack.mtype == "ACKLD"

    def test_establishment_on_quorum(self, original):
        spec = original
        state = oracle(spec)
        state = run(spec, state, "FollowerAcceptNEWLEADER", pair=(0, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 0))
        assert state["g_leaders"] == ((1, 2),)
        assert state["phase"][2] == "BROADCAST"
        commitld = state["msgs"][2][0][0]
        assert commitld.mtype == "COMMITLD"

    def test_split_actions_disabled(self, original):
        state = oracle(original)
        assert disabled(original, state, "FollowerUpdateHistory", pair=(0, 2))
        assert disabled(
            original, state, "FollowerUpdateEpochFirst", pair=(0, 2)
        )


class TestPhase2Improved:
    def test_history_must_precede_epoch(self, improved):
        spec = improved
        state = oracle(spec)
        assert disabled(spec, state, "FollowerUpdateEpoch", pair=(0, 2))
        state = run(spec, state, "FollowerUpdateHistory", pair=(0, 2))
        assert state["serving_state"][0] == "HISTORY_SYNCED"
        assert state["current_epoch"][0] == 0  # not yet
        state = run(spec, state, "FollowerUpdateEpoch", pair=(0, 2))
        assert state["current_epoch"][0] == 1

    def test_atomic_accept_disabled(self, improved):
        state = oracle(improved)
        assert disabled(
            improved, state, "FollowerAcceptNEWLEADER", pair=(0, 2)
        )


class TestPhase3:
    def serving(self, spec):
        state = oracle(spec)
        state = run(spec, state, "FollowerAcceptNEWLEADER", pair=(0, 2))
        state = run(spec, state, "FollowerAcceptNEWLEADER", pair=(1, 2))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 0))
        state = run(spec, state, "LeaderProcessACKLD", pair=(2, 1))
        state = run(spec, state, "FollowerProcessCOMMITLD", pair=(0, 2))
        state = run(spec, state, "FollowerProcessCOMMITLD", pair=(1, 2))
        return state

    def test_propose_ack_commit_deliver(self, original):
        spec = original
        state = self.serving(spec)
        state = run(spec, state, "LeaderPropose", i=2)
        assert len(state["g_proposed"]) == 1
        state = run(spec, state, "FollowerAcceptProposal", pair=(0, 2))
        state = run(spec, state, "LeaderCommit", pair=(2, 0))
        assert state["last_committed"][2] == 1
        assert state["g_delivered"][2]
        state = run(spec, state, "FollowerDeliver", pair=(0, 2))
        assert state["last_committed"][0] == 1

    def test_txn_budget(self, original):
        spec = original
        state = self.serving(spec)
        state = run(spec, state, "LeaderPropose", i=2)
        state = run(spec, state, "LeaderPropose", i=2)
        assert disabled(spec, state, "LeaderPropose", i=2)


class TestFaults:
    def test_crash_preserves_durable_state(self, original):
        spec = original
        state = oracle(spec)
        state = run(spec, state, "FollowerAcceptNEWLEADER", pair=(0, 2))
        state = run(spec, state, "NodeCrash", i=0)
        assert state["role"][0] == "DOWN"
        assert state["current_epoch"][0] == 1  # durable

    def test_follower_abandons_dead_leader(self, original):
        spec = original
        state = oracle(spec)
        state = run(spec, state, "NodeCrash", i=2)
        state = run(spec, state, "FollowerAbandon", i=0)
        assert state["role"][0] == "LOOKING"

    def test_leader_abandons_without_followers(self):
        spec = zab_spec(
            ZabConfig(max_txns=1, max_crashes=2, variant="original")
        )
        state = oracle(spec)
        state = run(spec, state, "NodeCrash", i=0)
        # with a quorum remaining the leader stays put
        assert disabled(spec, state, "LeaderAbandon", i=2)
        state = run(spec, state, "NodeCrash", i=1)
        state = run(spec, state, "LeaderAbandon", i=2)
        assert state["role"][2] == "LOOKING"
