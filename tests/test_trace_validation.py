"""Tests for bottom-up trace validation (§6's alternative approach)."""

import pytest

from repro.impl import Ensemble
from repro.remix import (
    COMPARED_VARIABLES,
    ImplExplorer,
    TraceValidator,
    mapping_for,
)
from repro.zookeeper import V391, ZkConfig, make_spec
from repro.zookeeper.scenarios import Scenario
from repro.zookeeper.specs import SELECTIONS

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


def validator(name, divergence="", seed=5, config=CFG, compared=None):
    spec = make_spec(name, config)
    return TraceValidator(
        spec,
        mapping_for(SELECTIONS[name]),
        lambda: Ensemble(config.n_servers, V391, divergence),
        seed=seed,
        compared_variables=compared or COMPARED_VARIABLES,
    )


class TestImplExplorer:
    def test_explore_progresses(self):
        spec = make_spec("mSpec-3", CFG)
        explorer = ImplExplorer(
            spec,
            mapping_for(SELECTIONS["mSpec-3"]),
            lambda: Ensemble(3, V391),
            seed=1,
        )
        executed, ensemble, error = explorer.explore(max_steps=15)
        assert len(executed) >= 5
        assert error is None

    def test_respects_fault_budgets(self):
        spec = make_spec("mSpec-3", CFG)
        explorer = ImplExplorer(
            spec,
            mapping_for(SELECTIONS["mSpec-3"]),
            lambda: Ensemble(3, V391),
            seed=2,
        )
        for _ in range(5):
            executed, _, _ = explorer.explore(max_steps=20)
            crashes = sum(1 for l in executed if l.name == "NodeCrash")
            partitions = sum(
                1 for l in executed if l.name == "PartitionStart"
            )
            txns = sum(
                1 for l in executed if l.name == "LeaderProcessRequest"
            )
            assert crashes <= CFG.max_crashes
            assert partitions <= CFG.max_partitions
            assert txns <= CFG.max_txns

    def test_deterministic_by_seed(self):
        spec = make_spec("mSpec-1", CFG)
        mapping = mapping_for(SELECTIONS["mSpec-1"])
        runs = []
        for _ in range(2):
            explorer = ImplExplorer(
                spec, mapping, lambda: Ensemble(3, V391), seed=9
            )
            executed, _, _ = explorer.explore(max_steps=12)
            runs.append(executed)
        assert runs[0] == runs[1]


class TestTraceValidator:
    @pytest.mark.parametrize("name", ["mSpec-1", "mSpec-2", "mSpec-3"])
    def test_shipped_impl_validates(self, name):
        report = validator(name).validate(runs=10, max_steps=18)
        assert report.valid, [str(i) for i in report.issues[:3]]
        assert report.steps_validated > 50

    def test_divergent_impl_rejected(self):
        report = validator("mSpec-3", divergence="skip_epoch_update").validate(
            runs=20, max_steps=18
        )
        assert not report.valid
        assert any(
            issue.kind == "state_mismatch"
            and issue.variable == "current_epoch"
            for issue in report.issues
        )

    def test_eager_broadcast_rejected(self):
        report = validator("mSpec-3", divergence="eager_broadcast").validate(
            runs=20, max_steps=18
        )
        assert not report.valid

    def test_summary(self):
        report = validator("mSpec-1").validate(runs=3, max_steps=10)
        assert "3 runs" in report.summary()


class TestUnknownVariable:
    """The Coordinator's PR-3 typo fix, ported to the validator: a
    compared variable absent from the snapshot must be reported, not
    silently skipped forever."""

    def test_typo_reported_not_silently_skipped(self):
        report = validator(
            "mSpec-1", compared=COMPARED_VARIABLES + ("historyy",)
        ).validate_run(max_steps=6)
        bad = [i for i in report.issues if i.kind == "unknown_variable"]
        assert len(bad) == 1
        assert bad[0].variable == "historyy"
        assert "absent from the implementation snapshot" in str(bad[0])

    def test_known_variables_still_validated(self):
        # The typo is reported once per run, and the remaining (known)
        # variables are still compared -- validation does not abort.
        report = validator(
            "mSpec-3", compared=("current_epoch", "historyy")
        ).validate_run(max_steps=8)
        assert report.steps_validated > 0
        assert [i.kind for i in report.issues] == ["unknown_variable"]

    def test_valid_tuple_reports_nothing(self):
        report = validator("mSpec-1").validate_run(max_steps=6)
        assert not any(
            i.kind == "unknown_variable" for i in report.issues
        )


class TestRunAttribution:
    def test_issues_carry_their_run_index(self):
        report = validator(
            "mSpec-3", divergence="skip_epoch_update"
        ).validate(runs=20, max_steps=18)
        mismatches = [
            i for i in report.issues if i.kind == "state_mismatch"
        ]
        assert mismatches
        runs = {i.run for i in mismatches}
        assert all(0 <= run < 20 for run in runs)
        # the divergence fires in more than one run, at colliding step
        # indices -- without the run index these would be ambiguous
        assert len(runs) > 1

    def test_unknown_variable_attributed_per_run(self):
        report = validator(
            "mSpec-1", compared=("state", "historyy")
        ).validate(runs=3, max_steps=4)
        bad = [i for i in report.issues if i.kind == "unknown_variable"]
        assert [i.run for i in bad] == [0, 1, 2]

    def test_run_rebuildable_from_report(self):
        # The (run, seed) pair identifies the exploration stream: a
        # fresh validator replaying runs 0..run reproduces the issue.
        v = validator("mSpec-3", divergence="skip_epoch_update", seed=11)
        total = v.validate(runs=20, max_steps=18)
        assert total.issues
        target = total.issues[0]
        replay = validator(
            "mSpec-3", divergence="skip_epoch_update", seed=11
        )
        for run in range(target.run + 1):
            run_report = replay.validate_run(max_steps=18, run=run)
        assert any(
            issue.kind == target.kind
            and issue.step == target.step
            and issue.label == target.label
            for issue in run_report.issues
        )


class TestScriptedPrefix:
    def prefix_labels(self, name="mSpec-1", config=None):
        config = config or ZkConfig(
            max_txns=1, max_crashes=2, max_partitions=1, max_epoch=3
        )
        spec = make_spec(name, config)
        scenario = Scenario(spec).elect(2, (0, 1, 2)).crash(0)
        return config, spec, scenario.labels

    def test_explore_executes_prefix_first(self):
        config, spec, labels = self.prefix_labels()
        explorer = ImplExplorer(
            spec,
            mapping_for(SELECTIONS["mSpec-1"]),
            lambda: Ensemble(config.n_servers, V391),
            seed=3,
        )
        executed, _, error = explorer.explore(max_steps=5, prefix=labels)
        assert error is None
        assert executed[: len(labels)] == list(labels)
        assert len(executed) > len(labels)

    def test_prefix_faults_consume_model_budgets(self):
        # The crash in the prefix counts against max_crashes: across many
        # seeds, prefix + suffix crashes never exceed the model budget.
        config, spec, labels = self.prefix_labels()
        mapping = mapping_for(SELECTIONS["mSpec-1"])
        for seed in range(8):
            explorer = ImplExplorer(
                spec, mapping,
                lambda: Ensemble(config.n_servers, V391), seed=seed,
            )
            executed, _, _ = explorer.explore(max_steps=15, prefix=labels)
            crashes = sum(1 for l in executed if l.name == "NodeCrash")
            partitions = sum(
                1 for l in executed if l.name == "PartitionStart"
            )
            assert crashes <= config.max_crashes
            assert partitions <= config.max_partitions

    def test_validate_labels_matches_validate_run(self):
        config, spec, labels = self.prefix_labels()
        v = TraceValidator(
            spec,
            mapping_for(SELECTIONS["mSpec-1"]),
            lambda: Ensemble(config.n_servers, V391),
            seed=4,
        )
        executed, _, _ = v.explorer.explore(max_steps=6, prefix=labels)
        report = v.validate_labels(executed)
        assert report.steps_validated > 0
        assert report.executed[: len(labels)] == list(labels)
