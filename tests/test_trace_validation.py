"""Tests for bottom-up trace validation (§6's alternative approach)."""

import pytest

from repro.impl import Ensemble
from repro.remix import ImplExplorer, TraceValidator, mapping_for
from repro.zookeeper import V391, ZkConfig, make_spec
from repro.zookeeper.specs import SELECTIONS

CFG = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


def validator(name, divergence="", seed=5, config=CFG):
    spec = make_spec(name, config)
    return TraceValidator(
        spec,
        mapping_for(SELECTIONS[name]),
        lambda: Ensemble(config.n_servers, V391, divergence),
        seed=seed,
    )


class TestImplExplorer:
    def test_explore_progresses(self):
        spec = make_spec("mSpec-3", CFG)
        explorer = ImplExplorer(
            spec,
            mapping_for(SELECTIONS["mSpec-3"]),
            lambda: Ensemble(3, V391),
            seed=1,
        )
        executed, ensemble, error = explorer.explore(max_steps=15)
        assert len(executed) >= 5
        assert error is None

    def test_respects_fault_budgets(self):
        spec = make_spec("mSpec-3", CFG)
        explorer = ImplExplorer(
            spec,
            mapping_for(SELECTIONS["mSpec-3"]),
            lambda: Ensemble(3, V391),
            seed=2,
        )
        for _ in range(5):
            executed, _, _ = explorer.explore(max_steps=20)
            crashes = sum(1 for l in executed if l.name == "NodeCrash")
            partitions = sum(
                1 for l in executed if l.name == "PartitionStart"
            )
            txns = sum(
                1 for l in executed if l.name == "LeaderProcessRequest"
            )
            assert crashes <= CFG.max_crashes
            assert partitions <= CFG.max_partitions
            assert txns <= CFG.max_txns

    def test_deterministic_by_seed(self):
        spec = make_spec("mSpec-1", CFG)
        mapping = mapping_for(SELECTIONS["mSpec-1"])
        runs = []
        for _ in range(2):
            explorer = ImplExplorer(
                spec, mapping, lambda: Ensemble(3, V391), seed=9
            )
            executed, _, _ = explorer.explore(max_steps=12)
            runs.append(executed)
        assert runs[0] == runs[1]


class TestTraceValidator:
    @pytest.mark.parametrize("name", ["mSpec-1", "mSpec-2", "mSpec-3"])
    def test_shipped_impl_validates(self, name):
        report = validator(name).validate(runs=10, max_steps=18)
        assert report.valid, [str(i) for i in report.issues[:3]]
        assert report.steps_validated > 50

    def test_divergent_impl_rejected(self):
        report = validator("mSpec-3", divergence="skip_epoch_update").validate(
            runs=20, max_steps=18
        )
        assert not report.valid
        assert any(
            issue.kind == "state_mismatch"
            and issue.variable == "current_epoch"
            for issue in report.issues
        )

    def test_eager_broadcast_rejected(self):
        report = validator("mSpec-3", divergence="eager_broadcast").validate(
            runs=20, max_steps=18
        )
        assert not report.valid

    def test_summary(self):
        report = validator("mSpec-1").validate(runs=3, max_steps=10)
        assert "3 runs" in report.summary()
