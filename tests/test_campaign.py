"""Tests for the conformance campaign: matrix enumeration, determinism,
dedup, JSON schema round-trip, the spec cache and the generic task pool."""

import json

import pytest

from repro.checker import parallel
from repro.checker.parallel import TaskPool
from repro.remix import spec_cache
from repro.remix.campaign import (
    CampaignJob,
    CampaignReport,
    CampaignRequest,
    ConformanceCampaign,
    RequestError,
    DEFAULT_FAULTS,
    DEFAULT_GRAINS,
    DEFAULT_SCENARIOS,
    campaign_config,
    canonical_value,
    dedup_min_traces,
    finding_fingerprint,
    merge_cells,
    new_fingerprints,
    parse_budget,
    run_cell,
    run_validation_cell,
)
from repro.zookeeper import ZkConfig, make_spec
from repro.zookeeper.faults import FaultSchedule, fault_schedule, fault_schedules
from repro.zookeeper.scenarios import SCENARIO_PREFIXES, Scenario, scenario_prefix


@pytest.fixture(autouse=True)
def fresh_cache():
    spec_cache.clear()
    yield
    spec_cache.clear()


def small_campaign(**overrides):
    kwargs = dict(
        grains=("mSpec-1",),
        scenarios=("election", "broadcast"),
        faults=("none", "crash-follower"),
        traces=1,
        max_steps=5,
        seed=7,
    )
    kwargs.update(overrides)
    return ConformanceCampaign(CampaignRequest(**kwargs))


class TestMatrix:
    def test_default_matrix_size(self):
        campaign = ConformanceCampaign(CampaignRequest(seeds=2))
        jobs = campaign.jobs()
        expected = (
            len(DEFAULT_GRAINS) * len(DEFAULT_SCENARIOS) * len(DEFAULT_FAULTS) * 2
        )
        assert len(jobs) == expected
        assert [job.index for job in jobs] == list(range(expected))

    def test_scenario_fault_cells_at_least_12(self):
        cells = {
            (job.scenario, job.fault)
            for job in ConformanceCampaign(CampaignRequest()).jobs()
        }
        assert len(cells) >= 12

    def test_unmappable_grain_rejected(self):
        with pytest.raises(RequestError, match="grains: unknown value 'SysSpec'"):
            CampaignRequest(grains=("SysSpec",))

    def test_unknown_fault_rejected(self):
        with pytest.raises(RequestError, match="faults: unknown value 'meteor-strike'"):
            CampaignRequest(faults=("meteor-strike",))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(RequestError, match="scenarios: unknown value 'apocalypse'"):
            CampaignRequest(scenarios=("apocalypse",))

    def test_fault_schedules_enumeration(self):
        names = [schedule.name for schedule in fault_schedules()]
        assert names[0] == "none"
        assert len(names) == len(set(names)) >= 6
        for name in names:
            assert fault_schedule(name).name == name

    def test_fault_schedule_resolve_matches_inject(self):
        schedule = fault_schedule("crash-restart-follower")
        assert schedule.resolve(2, 0) == [
            ("NodeCrash", {"i": 0}),
            ("NodeRestart", {"i": 0}),
        ]

    def test_unknown_direction_rejected(self):
        with pytest.raises(RequestError, match="directions: unknown value 'sideways'"):
            CampaignRequest(directions=("sideways",))

    def test_both_directions_double_the_matrix(self):
        single = ConformanceCampaign(CampaignRequest()).jobs()
        both = ConformanceCampaign(
            CampaignRequest(directions=("topdown", "bottomup"))
        ).jobs()
        assert len(both) == 2 * len(single)
        assert [job.direction for job in both[: len(single)]] == [
            "topdown"
        ] * len(single)
        assert [job.direction for job in both[len(single):]] == [
            "bottomup"
        ] * len(single)

    def test_bottomup_cell_id_is_prefixed(self):
        job = CampaignJob(
            0, "mSpec-1", "election", "none", 7, 1, 4, direction="bottomup"
        )
        assert job.cell_id == "bottomup:mSpec-1/election/none/s7"
        topdown = CampaignJob(0, "mSpec-1", "election", "none", 7, 1, 4)
        assert topdown.cell_id == "mSpec-1/election/none/s7"

    def test_directions_get_distinct_cell_seeds(self):
        from repro.remix.campaign import _cell_seed

        topdown = CampaignJob(0, "mSpec-1", "election", "none", 7, 1, 4)
        bottomup = CampaignJob(
            0, "mSpec-1", "election", "none", 7, 1, 4, direction="bottomup"
        )
        assert _cell_seed(topdown, 0) != _cell_seed(bottomup, 0)


class TestCellExecution:
    def test_cell_runs_and_covers_actions(self):
        job = CampaignJob(0, "mSpec-1", "broadcast", "crash-leader", 7, 2, 6)
        cell = run_cell(job, campaign_config())
        assert cell["status"] == "ok"
        assert cell["traces"] == 2
        assert cell["steps_replayed"] > 0
        assert cell["actions_covered"] >= 2

    def test_inapplicable_fault_is_reported_not_raised(self):
        # No partition budget -> PartitionStart is never enabled.
        config = ZkConfig(
            n_servers=3, max_txns=1, max_crashes=1, max_partitions=0,
            max_epoch=3,
        )
        job = CampaignJob(0, "mSpec-1", "election", "partition", 7, 1, 4)
        cell = run_cell(job, config)
        assert cell["status"] == "inapplicable"
        assert "not enabled" in cell["reason"]
        assert cell["findings"] == []

    def test_validation_cell_runs_and_finds(self):
        # Fixed-seed bottom-up cell: the simulator allows partitioning a
        # crashed node, which the model forbids -- a divergence only the
        # bottom-up direction can surface (top-down replay never contains
        # a model-disabled action).
        job = CampaignJob(
            0, "mSpec-1", "election", "crash-follower", 0, 2, 12,
            direction="bottomup",
        )
        cell = run_validation_cell(job, campaign_config())
        assert cell["status"] == "ok"
        assert cell["direction"] == "bottomup"
        assert cell["traces"] == 2
        assert cell["steps_replayed"] > 0
        assert cell["findings"], "expected a model-disabled finding"
        finding = cell["findings"][0]
        assert finding["direction"] == "bottomup"
        assert finding["kind"] == "model_disabled"
        witness = finding["witness"]
        assert witness["direction"] == "bottomup"
        assert "explorer_seed" in witness and "explorer_steps" in witness

    def test_validation_cell_is_deterministic(self):
        job = CampaignJob(
            0, "mSpec-1", "broadcast", "none", 7, 2, 8,
            direction="bottomup",
        )
        first = run_validation_cell(job, campaign_config())
        second = run_validation_cell(job, campaign_config())
        assert first == second

    def test_validation_cell_inapplicable_fault(self):
        config = ZkConfig(
            n_servers=3, max_txns=1, max_crashes=1, max_partitions=0,
            max_epoch=3,
        )
        job = CampaignJob(
            0, "mSpec-1", "election", "partition", 7, 1, 4,
            direction="bottomup",
        )
        cell = run_validation_cell(job, config)
        assert cell["status"] == "inapplicable"
        assert cell["findings"] == []

    def test_cell_seeds_differ_across_cells(self):
        from repro.remix.campaign import _cell_seed

        jobs = [
            CampaignJob(i, "mSpec-1", scenario, fault, 7, 1, 4)
            for i, (scenario, fault) in enumerate(
                [("election", "none"), ("election", "partition"),
                 ("sync", "none")]
            )
        ]
        seeds = {_cell_seed(job, 0) for job in jobs}
        assert len(seeds) == len(jobs)


class TestDeterminismAndDedup:
    def test_fixed_seed_reproducible(self):
        first = small_campaign().run().to_json()
        second = small_campaign().run().to_json()
        assert first["cells"] == second["cells"]
        assert first["findings"] == second["findings"]
        assert first["totals"] == second["totals"]

    @pytest.mark.skipif(not parallel.available(), reason="needs fork")
    def test_workers_do_not_change_findings(self):
        seq = small_campaign(workers=1).run().to_json()
        par = small_campaign(workers=2).run().to_json()
        assert seq["cells"] == par["cells"]
        assert seq["findings"] == par["findings"]
        assert seq["totals"] == par["totals"]

    @pytest.mark.skipif(not parallel.available(), reason="needs fork")
    def test_mixed_direction_campaign_deterministic_across_workers(self):
        kw = dict(directions=("topdown", "bottomup"))
        seq = small_campaign(workers=1, **kw).run().to_json()
        par = small_campaign(workers=2, **kw).run().to_json()
        assert seq["cells"] == par["cells"]
        assert seq["findings"] == par["findings"]
        assert seq["totals"] == par["totals"]
        assert seq["totals"]["bottomup_findings"] > 0

    def test_bottomup_findings_disjoint_from_topdown(self):
        report = small_campaign(
            directions=("topdown", "bottomup")
        ).run()
        by_direction = {"topdown": set(), "bottomup": set()}
        for finding in report.findings:
            by_direction[finding["direction"]].add(finding["fingerprint"])
        assert not (by_direction["topdown"] & by_direction["bottomup"])

    def test_adaptive_pools_yield_across_directions(self):
        kw = dict(
            grains=("mSpec-1",),
            scenarios=("election", "broadcast"),
            faults=("none", "crash-follower"),
            traces=1,
            max_steps=5,
            seed=7,
            seeds=2,
            directions=("topdown", "bottomup"),
        )
        uniform = ConformanceCampaign(CampaignRequest(**kw)).run().totals
        adaptive = ConformanceCampaign(
            CampaignRequest(**kw, adaptive=True)
        ).run().totals
        assert adaptive["cells"] == uniform["cells"]
        assert (
            adaptive["distinct_findings"] >= uniform["distinct_findings"]
        )

    def test_merge_dedups_identical_findings(self):
        jobs = [
            CampaignJob(0, "mSpec-1", "election", "none", 7, 1, 4),
            CampaignJob(1, "mSpec-1", "sync", "none", 7, 1, 4),
        ]
        finding = {
            "fingerprint": "abcd", "kind": "state_mismatch",
            "detail": "x differs",
        }
        results = [
            dict(grain="mSpec-1", scenario="election", fault="none", seed=7,
                 status="ok", traces=1, steps_replayed=4, actions_covered=2,
                 discrepancies=1, impl_bugs=0, findings=[dict(finding)]),
            dict(grain="mSpec-1", scenario="sync", fault="none", seed=7,
                 status="ok", traces=1, steps_replayed=4, actions_covered=2,
                 discrepancies=1, impl_bugs=0, findings=[dict(finding)]),
        ]
        report = merge_cells({}, jobs, results)
        assert len(report.findings) == 1
        assert report.findings[0]["count"] == 2
        assert report.findings[0]["cells"] == [
            "mSpec-1/election/none/s7", "mSpec-1/sync/none/s7",
        ]
        assert report.totals["discrepancies"] == 2
        assert report.totals["distinct_findings"] == 1

    def test_finding_counts_aggregate_to_cell_totals(self):
        report = small_campaign(
            scenarios=("sync",), faults=("crash-restart-follower",),
            grains=("mSpec-2",), traces=2, max_steps=10,
        ).run()
        totals = report.totals
        assert sum(f["count"] for f in report.findings) == (
            totals["discrepancies"] + totals["impl_bugs"]
        )

    def test_skipped_jobs_recorded(self):
        report = small_campaign(budget=1e-9).run()
        assert report.totals["skipped"] == report.totals["cells"] > 0
        assert report.findings == []


class TestReportSchema:
    def test_json_round_trip(self):
        report = small_campaign().run()
        blob = json.dumps(report.to_json())
        back = CampaignReport.from_json(json.loads(blob))
        assert back.cells == report.cells
        assert back.findings == report.findings
        assert back.totals == report.totals
        assert back.meta == report.meta

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported campaign schema"):
            CampaignReport.from_json({"schema": "bogus/9"})

    def test_new_fingerprints_gate(self):
        report = CampaignReport(
            meta={},
            cells=[],
            findings=[
                {"fingerprint": "aa", "kind": "impl_bug"},
                {"fingerprint": "bb", "kind": "state_mismatch"},
            ],
        )
        empty = {"findings": []}
        assert new_fingerprints(report, empty) == ["aa"]
        known = {"findings": [{"fingerprint": "aa", "kind": "impl_bug"}]}
        assert new_fingerprints(report, known) == []

    def test_parse_budget(self):
        assert parse_budget("5s") == 5.0
        assert parse_budget("2m") == 120.0
        assert parse_budget("90") == 90.0
        assert parse_budget("500ms") == 0.5
        with pytest.raises(ValueError):
            parse_budget("soon")
        with pytest.raises(ValueError):
            parse_budget("-3s")

    def test_canonical_value_is_order_stable(self):
        left = canonical_value(frozenset({(1, 2), (0, 5), (3, 1)}))
        right = canonical_value(frozenset({(3, 1), (1, 2), (0, 5)}))
        assert left == right
        assert finding_fingerprint({"v": left}) == finding_fingerprint(
            {"v": right}
        )


class TestDiskCache:
    """The on-disk persistence layer: repeated 'CLI invocations' (fresh
    in-memory caches) warm-start from persisted prefix traces."""

    @pytest.fixture(autouse=True)
    def isolated_dir(self, tmp_path):
        spec_cache.set_disk_cache_dir(str(tmp_path / "disk"))
        yield
        spec_cache.set_disk_cache_dir(None)

    def run_once(self):
        return small_campaign(directions=("topdown", "bottomup")).run()

    def test_second_invocation_warm_starts(self):
        first = self.run_once().to_json()
        cold = spec_cache.stats()
        assert cold["disk_hits"] == 0 and cold["disk_misses"] > 0
        spec_cache.clear()  # a fresh process, same disk
        second = self.run_once().to_json()
        warm = spec_cache.stats()
        assert warm["disk_hits"] > 0 and warm["disk_misses"] == 0
        # warm-started results are identical to cold ones
        assert first["cells"] == second["cells"]
        assert first["findings"] == second["findings"]

    def test_cached_prefix_round_trip(self):
        config = campaign_config()
        built = spec_cache.cached_prefix(
            "mSpec-1", config, "broadcast", "crash-follower", 2, 0
        )
        spec_cache.clear()
        loaded = spec_cache.cached_prefix(
            "mSpec-1", config, "broadcast", "crash-follower", 2, 0
        )
        assert spec_cache.stats()["disk_hits"] == 1
        assert loaded.labels == built.labels
        assert [s.values for s in loaded.states] == [
            s.values for s in built.states
        ]
        assert loaded.state == built.state

    def test_prefix_is_fresh_per_call(self):
        config = campaign_config()
        first = spec_cache.cached_prefix(
            "mSpec-1", config, "election", "none", 2, 0
        )
        first.labels.append("mutation")
        second = spec_cache.cached_prefix(
            "mSpec-1", config, "election", "none", 2, 0
        )
        assert "mutation" not in second.labels

    def test_source_digest_keys_invalidation(self, monkeypatch):
        config = campaign_config()
        spec_cache.cached_prefix("mSpec-1", config, "election", "none", 2, 0)
        spec_cache.clear()
        # Simulate an edited spec source: a different digest must miss.
        monkeypatch.setattr(
            spec_cache, "_SOURCE_DIGEST", "deadbeefdeadbeefdead"
        )
        spec_cache.cached_prefix("mSpec-1", config, "election", "none", 2, 0)
        stats = spec_cache.stats()
        assert stats["disk_hits"] == 0 and stats["disk_misses"] == 1

    def test_corrupt_entry_recomputes(self, tmp_path):
        import glob

        config = campaign_config()
        spec_cache.cached_prefix("mSpec-1", config, "election", "none", 2, 0)
        for path in glob.glob(str(tmp_path / "disk" / "*" / "*.pkl")):
            with open(path, "wb") as fh:
                fh.write(b"not a pickle")
        spec_cache.clear()
        prefix = spec_cache.cached_prefix(
            "mSpec-1", config, "election", "none", 2, 0
        )
        assert prefix.labels  # recomputed, not crashed
        assert spec_cache.stats()["disk_hits"] == 0

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        spec_cache.set_disk_cache_dir("off")
        config = campaign_config()
        spec_cache.cached_prefix("mSpec-1", config, "election", "none", 2, 0)
        stats = spec_cache.stats()
        assert stats["disk_hits"] == stats["disk_misses"] == 0


class TestMinTraceAliases:
    def finding(self, fingerprint, labels, direction="topdown", **extra):
        return dict(
            fingerprint=fingerprint,
            kind="state_mismatch",
            grain="mSpec-1",
            direction=direction,
            detail=f"finding {fingerprint}",
            count=1,
            cells=[f"cell-{fingerprint}"],
            min_trace={"status": "ok", "steps": len(labels), "labels": labels},
            **extra,
        )

    def test_same_min_trace_groups_into_aliases(self):
        labels = [{"name": "NodeCrash", "args": {"i": 0}}]
        findings = [
            self.finding("aa", labels),
            self.finding("bb", labels),
            self.finding("cc", [{"name": "NodeCrash", "args": {"i": 1}}]),
        ]
        deduped = dedup_min_traces(findings)
        assert [f["fingerprint"] for f in deduped] == ["aa", "cc"]
        aliases = deduped[0]["aliases"]
        assert [a["fingerprint"] for a in aliases] == ["bb"]
        assert aliases[0]["cells"] == ["cell-bb"]

    def test_directions_and_grains_never_group(self):
        labels = [{"name": "NodeCrash", "args": {"i": 0}}]
        findings = [
            self.finding("aa", labels, direction="topdown"),
            self.finding("bb", labels, direction="bottomup"),
        ]
        assert len(dedup_min_traces(findings)) == 2

    def test_unshrunk_findings_pass_through(self):
        findings = [
            {"fingerprint": "aa", "kind": "impl_bug",
             "min_trace": {"status": "unreproducible"}},
            {"fingerprint": "bb", "kind": "impl_bug"},
        ]
        assert dedup_min_traces(list(findings)) == findings

    def test_aliased_fingerprints_survive_in_report(self):
        labels = [{"name": "NodeCrash", "args": {"i": 0}}]
        report = CampaignReport(
            meta={},
            cells=[],
            findings=dedup_min_traces(
                [self.finding("aa", labels), self.finding("bb", labels)]
            ),
        )
        assert report.fingerprints() == ["aa", "bb"]
        assert report.totals["distinct_findings"] == 1
        assert report.totals["aliased_findings"] == 1
        # the baseline gate keeps recognizing the aliased fingerprint
        baseline = {"findings": [{"fingerprint": "bb", "kind": "state_mismatch"}]}
        assert new_fingerprints(report, baseline, kind="state_mismatch") == ["aa"]

    def test_baseline_aliases_count_as_known(self):
        # Alias grouping is first-seen: a later run may promote a
        # fingerprint the baseline stores only as an alias to its own
        # representative.  The gate must not flag it as new.
        labels = [{"name": "NodeCrash", "args": {"i": 0}}]
        baseline = {
            "findings": [
                dict(
                    self.finding("head", labels),
                    kind="impl_bug",
                    aliases=[{"fingerprint": "ali", "kind": "impl_bug"}],
                )
            ]
        }
        report = CampaignReport(
            meta={},
            cells=[],
            findings=[dict(self.finding("ali", labels), kind="impl_bug")],
        )
        assert new_fingerprints(report, baseline, kind="impl_bug") == []


class TestSpecCache:
    def test_same_key_returns_same_object(self):
        config = campaign_config()
        first = spec_cache.cached_spec("mSpec-1", config)
        second = spec_cache.cached_spec("mSpec-1", config)
        assert first is second
        stats = spec_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_distinct_configs_distinct_specs(self):
        first = spec_cache.cached_spec("mSpec-1", campaign_config())
        second = spec_cache.cached_spec(
            "mSpec-1", campaign_config().with_variant(
                campaign_config().variant.with_(fix_follower_shutdown=True)
            )
        )
        assert first is not second

    def test_cached_mapping(self):
        assert spec_cache.cached_mapping("mSpec-3") is spec_cache.cached_mapping(
            "mSpec-3"
        )


class TestScenarioIndex:
    def test_instance_named_matches_linear_scan(self):
        spec = make_spec("mSpec-1", campaign_config())
        inst = spec.instance_named("NodeCrash", {"i": 1})
        assert inst is not None
        by_scan = [
            candidate
            for candidate in spec.action_instances()
            if candidate.label.name == "NodeCrash"
            and candidate.label.args == {"i": 1}
        ]
        assert inst is by_scan[0]

    def test_instance_named_unknown_is_none(self):
        spec = make_spec("mSpec-1", campaign_config())
        assert spec.instance_named("Bogus", {"i": 1}) is None
        assert spec.instance_named("NodeCrash", {"i": 99}) is None

    def test_scenario_prefixes_cover_all_grains(self):
        for grain in DEFAULT_GRAINS:
            spec = spec_cache.cached_spec(grain, campaign_config())
            for name in SCENARIO_PREFIXES:
                prefix = scenario_prefix(name, spec, 2, (0, 1, 2))
                assert len(prefix.labels) > 0

    def test_fault_injection_applies_steps(self):
        spec = spec_cache.cached_spec("mSpec-1", campaign_config())
        scenario = Scenario(spec).serving_cluster()
        before = len(scenario.labels)
        fault_schedule("crash-restart-follower").inject(scenario, 2, 0)
        assert len(scenario.labels) == before + 2
        assert scenario.labels[-2].name == "NodeCrash"
        assert scenario.labels[-1].name == "NodeRestart"

    def test_custom_schedule_roles_resolve(self):
        spec = spec_cache.cached_spec("mSpec-1", campaign_config())
        scenario = Scenario(spec).serving_cluster()
        schedule = FaultSchedule(
            "custom", (("PartitionStart", (("pair", "leader-follower-pair"),)),)
        )
        schedule.inject(scenario, 2, 0)
        assert scenario.labels[-1].args == {"pair": (0, 2)}


@pytest.mark.skipif(not parallel.available(), reason="needs fork")
class TestTaskPool:
    def test_map_preserves_task_order(self):
        pool = TaskPool(lambda task: task * task, workers=3)
        try:
            assert pool.map(list(range(17))) == [i * i for i in range(17)]
        finally:
            pool.close()

    def test_deadline_skips_remaining_tasks(self):
        import time

        pool = TaskPool(lambda task: task, workers=2)
        try:
            results = pool.map([1, 2, 3], deadline=time.monotonic() - 1.0)
        finally:
            pool.close()
        assert results == [None, None, None]

    def test_worker_error_surfaces(self):
        def boom(task):
            raise ValueError(f"bad task {task}")

        pool = TaskPool(boom, workers=2)
        try:
            with pytest.raises(RuntimeError, match="task 0 failed"):
                pool.map([1])
        finally:
            pool.close()

    def test_dead_worker_does_not_hang_map(self):
        import os

        def sometimes_die(task):
            if task == "die":
                os._exit(1)
            return task

        pool = TaskPool(sometimes_die, workers=2)
        try:
            results = pool.map(["ok", "die"])
        finally:
            pool.close()
        # The poisoned task kills every worker it is requeued onto and
        # comes back None; completed results survive.
        assert results[0] == "ok"
        assert results[1] is None
