"""Tests for Specification, Invariant and CheckResult plumbing."""

import copy

import pytest

from repro.checker.result import CheckResult, Violation
from repro.checker.trace import Trace
from repro.tla.action import Action, ActionLabel
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State
from repro.tla.values import Rec

SCHEMA = Schema(("x",))


def spec_with_actions():
    def inc(config, state, by):
        if state.x + by > 3:
            return None
        return {"x": state.x + by}

    act = Action(
        "Inc",
        inc,
        params={"by": lambda cfg: [1, 2]},
        reads=["x"],
        writes=["x"],
    )
    return Specification(
        "steps",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0)],
        [Module("M", [act])],
        [Invariant("I-1", "bounded", lambda cfg, s: s.x <= 3)],
        None,
    )


class TestSpecification:
    def test_action_instances_enumerated_once(self):
        spec = spec_with_actions()
        assert spec.action_instances() is spec.action_instances()
        assert len(spec.action_instances()) == 2

    def test_successors_skip_noops_and_disabled(self):
        spec = spec_with_actions()
        state = State.make(SCHEMA, x=2)
        labels = [str(l) for l, _ in spec.successors(state)]
        assert labels == ["Inc(by=1)"]  # by=2 would exceed the bound

    def test_instance_for_label(self):
        spec = spec_with_actions()
        inst = spec.instance_for(ActionLabel("Inc", (("by", 2),)))
        assert inst.apply(None, State.make(SCHEMA, x=0)).x == 2

    def test_instance_for_unknown_label(self):
        spec = spec_with_actions()
        with pytest.raises(KeyError):
            spec.instance_for(ActionLabel("Nope"))

    def test_replay_success(self):
        spec = spec_with_actions()
        labels = [
            ActionLabel("Inc", (("by", 1),)),
            ActionLabel("Inc", (("by", 2),)),
        ]
        states = spec.replay(labels, spec.initial_states()[0])
        assert [s.x for s in states] == [0, 1, 3]

    def test_replay_disabled_step_raises(self):
        spec = spec_with_actions()
        labels = [ActionLabel("Inc", (("by", 2),))] * 2
        with pytest.raises(ValueError, match="replay failed"):
            spec.replay(labels, spec.initial_states()[0])

    def test_enabled_labels(self):
        spec = spec_with_actions()
        labels = spec.enabled_labels(State.make(SCHEMA, x=0))
        assert len(labels) == 2

    def test_violated_invariants(self):
        spec = spec_with_actions()
        # force an out-of-bounds state directly
        bad = State.make(SCHEMA, x=9)
        assert [i.ident for i in spec.violated_invariants(bad)] == ["I-1"]


class TestInvariant:
    def test_full_name_with_instance(self):
        inv = Invariant("I-11", "bad state", lambda c, s: True, instance="X")
        assert inv.full_name == "I-11/X"

    def test_full_name_without_instance(self):
        inv = Invariant("I-1", "x", lambda c, s: True)
        assert inv.full_name == "I-1"


class TestCheckResult:
    def _violation(self, ident="I-1"):
        state = State.make(SCHEMA, x=9)
        return Violation(
            invariant=Invariant(ident, "bounded", lambda c, s: False),
            trace=Trace(states=[state], labels=[]),
        )

    def test_summary_no_violation(self):
        result = CheckResult(spec_name="s", completed=True)
        assert "completed" in result.summary()
        assert "no violation" in result.summary()

    def test_summary_budget(self):
        result = CheckResult(spec_name="s", budget_exhausted="max_time")
        assert "max_time" in result.summary()

    def test_violated_ids_deduplicated_in_order(self):
        result = CheckResult(spec_name="s")
        result.violations = [
            self._violation("I-2"),
            self._violation("I-1"),
            self._violation("I-2"),
        ]
        assert result.violated_invariant_ids() == ["I-2", "I-1"]

    def test_first_violation(self):
        result = CheckResult(spec_name="s")
        assert result.first_violation is None
        result.violations = [self._violation()]
        assert result.first_violation.depth == 0


class TestRecCopySemantics:
    """Regression: deepcopy of Rec used to recurse via __getattr__."""

    def test_deepcopy_returns_self(self):
        record = Rec(a=1, nested=(Rec(b=2),))
        assert copy.deepcopy(record) is record
        assert copy.copy(record) is record

    def test_deepcopy_inside_containers(self):
        data = {"k": [Rec(a=1)], "m": {0: Rec(b=2)}}
        cloned = copy.deepcopy(data)
        assert cloned["k"][0] is data["k"][0]
        assert cloned == data

    def test_private_attribute_probe_raises(self):
        with pytest.raises(AttributeError):
            Rec(a=1).__deepcopy_probe__
