"""The Raft plugin's model, implementation and planted bugs."""

import copy

import pytest

from repro.checker import BFSChecker
from repro.raft.config import FIXED_VARIANT, RaftConfig, RaftVariant
from repro.raft.impl import NO_VOTE, CommitAheadError, RaftEnsemble
from repro.raft.mapping import raft_mapping
from repro.raft.scenarios import FAULT_SCHEDULES, SCENARIO_PREFIXES
from repro.raft.spec import DOWN, FOLLOWER, LEADER, make_spec
from repro.system.plugin import Scenario, ScenarioError

CONFIG = RaftConfig(max_entries=1, max_crashes=1, max_partitions=1, max_term=2)


def elect(spec, leader=2, quorum=(0, 1, 2)):
    scenario = Scenario(spec)
    if any(a.name == "ElectLeader" for a in spec.actions):
        return scenario.apply("ElectLeader", i=leader, Q=tuple(quorum))
    scenario.apply("BecomeCandidate", i=leader)
    for voter in quorum:
        if voter != leader:
            scenario.apply("GrantVote", pair=(voter, leader))
    return scenario.apply("BecomeLeader", i=leader)


class TestSpec:
    def test_unknown_grain_raises(self):
        with pytest.raises(KeyError, match="unknown or unmappable grain"):
            make_spec("raft-medium")

    def test_coarse_and_fine_elect_equivalently(self):
        coarse = elect(make_spec("raft-coarse", CONFIG)).state
        fine = elect(make_spec("raft-fine", CONFIG)).state
        for variable in ("role", "current_term", "voted_for", "log"):
            assert coarse[variable] == fine[variable]
        assert coarse["role"] == (FOLLOWER, FOLLOWER, LEADER)
        assert coarse["voted_for"] == (2, 2, 2)

    def test_replication_and_commit(self):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = elect(spec)
        scenario.apply("ClientRequest", i=2)
        scenario.apply("ReplicateLog", pair=(2, 0))
        scenario.apply("LeaderAdvanceCommit", i=2)
        scenario.apply("FollowerLearnCommit", pair=(0, 2))
        state = scenario.state
        assert state["log"][2] == ((1, 1),)
        assert state["commit_index"] == (1, 0, 1)

    def test_commit_requires_quorum_match(self):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = elect(spec)
        scenario.apply("ClientRequest", i=2)
        # nobody replicated yet: only the leader's log matches
        assert not scenario.can("LeaderAdvanceCommit", i=2)

    def test_restart_resets_volatile_keeps_durable(self):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = elect(spec)
        scenario.apply("ClientRequest", i=2)
        scenario.apply("ReplicateLog", pair=(2, 0))
        scenario.apply("LeaderAdvanceCommit", i=2)
        scenario.apply("FollowerLearnCommit", pair=(0, 2))
        scenario.apply("NodeCrash", i=0)
        assert scenario.state["role"][0] == DOWN
        scenario.apply("NodeRestart", i=0)
        state = scenario.state
        assert state["role"][0] == FOLLOWER
        assert state["commit_index"][0] == 0  # volatile
        assert state["voted_for"][0] == 2  # durable
        assert state["log"][0] == ((1, 1),)  # durable

    def test_model_is_safe(self):
        config = RaftConfig(
            max_entries=1, max_crashes=1, max_partitions=0, max_term=2
        )
        for grain in ("raft-coarse", "raft-fine"):
            result = BFSChecker(
                make_spec(grain, config), max_states=200_000, max_time=120
            ).run()
            assert not result.found_violation, grain

    def test_up_to_date_restriction(self):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = elect(spec)
        scenario.apply("ClientRequest", i=2)
        scenario.apply("ReplicateLog", pair=(2, 1))
        # server 0 never replicated: its log cannot win against 1 and 2
        with pytest.raises(ScenarioError):
            scenario.apply("ElectLeader", i=0, Q=(0, 1, 2))


class TestScenariosAndFaults:
    @pytest.mark.parametrize("grain", ["raft-coarse", "raft-fine"])
    @pytest.mark.parametrize("name", sorted(SCENARIO_PREFIXES))
    def test_prefixes_script_on_both_grains(self, grain, name):
        spec = make_spec(grain, CONFIG)
        scenario = SCENARIO_PREFIXES[name](spec, 2, (0, 1, 2))
        assert scenario.labels

    @pytest.mark.parametrize(
        "fault", [s.name for s in FAULT_SCHEDULES if s.name != "none"]
    )
    def test_fault_schedules_inject_after_commit(self, fault):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = SCENARIO_PREFIXES["commit"](spec, 2, (0, 1, 2))
        schedule = next(s for s in FAULT_SCHEDULES if s.name == fault)
        schedule.inject(scenario, leader=2, follower=0)


class TestImpl:
    def drive(self, variant=None, commit=True):
        ensemble = RaftEnsemble(3, variant)
        assert ensemble.run_election(2, (0, 1, 2))
        if commit:
            assert ensemble.client_request(2)
            assert ensemble.replicate_log(2, 0)
            assert ensemble.leader_advance_commit(2)
            assert ensemble.follower_learn_commit(0, 2)
        return ensemble

    def test_snapshot_matches_model_after_commit(self):
        spec = make_spec("raft-coarse", CONFIG)
        scenario = SCENARIO_PREFIXES["commit"](spec, 2, (0, 1, 2))
        ensemble = self.drive()
        snapshot = ensemble.snapshot()
        for variable in (
            "role",
            "current_term",
            "voted_for",
            "log",
            "commit_index",
        ):
            assert snapshot[variable] == scenario.state[variable], variable

    def test_buggy_restart_forgets_vote_and_keeps_commit(self):
        ensemble = self.drive()
        assert ensemble.node_crash(0)
        assert ensemble.node_restart(0)
        assert ensemble.nodes[0].voted_for == NO_VOTE  # bug 1
        assert ensemble.nodes[0].commit_index == 1  # bug 2

    def test_fixed_restart_matches_model(self):
        ensemble = self.drive(FIXED_VARIANT)
        assert ensemble.node_crash(0)
        assert ensemble.node_restart(0)
        assert ensemble.nodes[0].voted_for == 2
        assert ensemble.nodes[0].commit_index == 0

    def test_unclamped_commit_raises(self):
        ensemble = self.drive(commit=False)
        assert ensemble.client_request(2)
        assert ensemble.replicate_log(2, 0)
        assert ensemble.leader_advance_commit(2)
        # server 1 voted (same term) but never replicated: its empty log
        # cannot hold the leader's commit index
        with pytest.raises(CommitAheadError):
            ensemble.follower_learn_commit(1, 2)

    def test_clamped_commit_is_stuck_not_raising(self):
        ensemble = self.drive(
            RaftVariant(clamp_commit=True), commit=False
        )
        assert ensemble.client_request(2)
        assert ensemble.replicate_log(2, 0)
        assert ensemble.leader_advance_commit(2)
        assert ensemble.follower_learn_commit(1, 2) is False

    def test_deepcopy_isolates(self):
        ensemble = self.drive()
        clone = copy.deepcopy(ensemble)
        clone.node_crash(0)
        assert ensemble.nodes[0].role != DOWN
        assert clone.snapshot() != ensemble.snapshot()

    def test_mapping_covers_both_grains(self):
        mapping = raft_mapping()
        for grain in ("raft-coarse", "raft-fine"):
            spec = make_spec(grain, CONFIG)
            for action in spec.actions:
                instances = [
                    inst
                    for inst in spec.action_instances()
                    if inst.label.name == action.name
                ]
                assert instances
                assert mapping.lookup(instances[0].label) is not None, (
                    action.name
                )
