"""Unit and property tests for repro.tla.values."""

import pytest
from hypothesis import given, strategies as st

from repro.tla.values import (
    Rec,
    Txn,
    Zxid,
    ZXID_ZERO,
    comparable,
    is_prefix,
    last_zxid,
    seq,
    seq_append,
    seq_concat,
    seq_head,
    seq_tail,
    updated,
)


class TestRec:
    def test_attribute_access(self):
        record = Rec(mtype="ACK", zxid=Zxid(1, 2))
        assert record.mtype == "ACK"
        assert record.zxid == Zxid(1, 2)

    def test_item_access(self):
        record = Rec(a=1)
        assert record["a"] == 1
        with pytest.raises(KeyError):
            record["b"]

    def test_missing_attribute(self):
        with pytest.raises(AttributeError):
            Rec(a=1).b

    def test_immutable(self):
        record = Rec(a=1)
        with pytest.raises(TypeError):
            record.a = 2

    def test_equality_is_field_order_independent(self):
        assert Rec(a=1, b=2) == Rec(b=2, a=1)

    def test_hash_consistent_with_equality(self):
        assert hash(Rec(a=1, b=2)) == hash(Rec(b=2, a=1))

    def test_inequality(self):
        assert Rec(a=1) != Rec(a=2)
        assert Rec(a=1) != Rec(a=1, b=2)

    def test_replace_creates_new_record(self):
        record = Rec(a=1, b=2)
        other = record.replace(a=3)
        assert other.a == 3 and other.b == 2
        assert record.a == 1

    def test_replace_can_add_fields(self):
        assert Rec(a=1).replace(b=2).b == 2

    def test_mapping_protocol(self):
        record = Rec(a=1, b=2)
        assert set(record) == {"a", "b"}
        assert len(record) == 2
        assert dict(record) == {"a": 1, "b": 2}

    def test_fields(self):
        assert Rec(b=1, a=2).fields() == ("a", "b")

    def test_repr_roundtrips_fields(self):
        assert "mtype='ACK'" in repr(Rec(mtype="ACK"))

    def test_usable_in_sets(self):
        assert len({Rec(a=1), Rec(a=1), Rec(a=2)}) == 2


class TestZxid:
    def test_total_order_epoch_first(self):
        assert Zxid(2, 1) > Zxid(1, 99)

    def test_total_order_counter_second(self):
        assert Zxid(1, 2) > Zxid(1, 1)

    def test_zero(self):
        assert ZXID_ZERO == Zxid(0, 0)
        assert ZXID_ZERO < Zxid(0, 1)

    def test_repr(self):
        assert repr(Zxid(1, 2)) == "<1,2>"


class TestSequences:
    def test_seq(self):
        assert seq(1, 2, 3) == (1, 2, 3)

    def test_append(self):
        assert seq_append((1,), 2) == (1, 2)

    def test_concat(self):
        assert seq_concat((1,), [2, 3]) == (1, 2, 3)

    def test_head_tail(self):
        assert seq_head((1, 2)) == 1
        assert seq_tail((1, 2)) == (2,)

    def test_head_of_empty_raises(self):
        with pytest.raises(IndexError):
            seq_head(())

    def test_updated(self):
        assert updated((1, 2, 3), 1, 9) == (1, 9, 3)

    def test_last_zxid_empty(self):
        assert last_zxid(()) == ZXID_ZERO

    def test_last_zxid(self):
        history = (Txn(Zxid(1, 1), 1), Txn(Zxid(1, 2), 2))
        assert last_zxid(history) == Zxid(1, 2)


class TestPrefix:
    def test_empty_is_prefix_of_all(self):
        assert is_prefix((), (1, 2))

    def test_proper_prefix(self):
        assert is_prefix((1,), (1, 2))
        assert not is_prefix((2,), (1, 2))

    def test_equal_sequences(self):
        assert is_prefix((1, 2), (1, 2))

    def test_longer_is_not_prefix(self):
        assert not is_prefix((1, 2, 3), (1, 2))

    def test_comparable(self):
        assert comparable((1,), (1, 2))
        assert comparable((1, 2), (1,))
        assert not comparable((1, 3), (1, 2))


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_prefix_iff_slice(left, right):
    left, right = tuple(left), tuple(right)
    assert is_prefix(left, right) == (right[: len(left)] == left)


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=4))
def test_extension_preserves_prefix(base, extra):
    base, extra = tuple(base), tuple(extra)
    assert is_prefix(base, base + extra)


@given(
    st.lists(st.integers(), max_size=6),
    st.lists(st.integers(), max_size=6),
    st.lists(st.integers(), max_size=6),
)
def test_prefix_transitive(a, b, c):
    a, b, c = tuple(a), tuple(b), tuple(c)
    if is_prefix(a, b) and is_prefix(b, c):
        assert is_prefix(a, c)


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_comparable_symmetric(left, right):
    assert comparable(tuple(left), tuple(right)) == comparable(
        tuple(right), tuple(left)
    )
