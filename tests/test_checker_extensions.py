"""Tests for the checker extensions: DFS, iterative deepening, coverage,
trace shrinking and pretty-printing."""

import pytest

from repro.checker import (
    BFSChecker,
    DFSChecker,
    IterativeDeepeningChecker,
    RandomWalker,
    format_state,
    format_trace,
    measure_coverage,
    shrink_trace,
    violation_predicate,
)
from repro.checker.trace import Trace
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State

SCHEMA = Schema(("x", "y"))


def counter_spec(max_x=4, y_bound=2):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    def noop_z(config, state):
        return None  # never enabled: coverage must flag it

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
            Action("NeverFires", noop_z, reads=["x"], writes=["x"]),
        ],
    )
    return Specification(
        "counter",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
    )


class TestDFS:
    def test_finds_a_violation(self):
        result = DFSChecker(counter_spec(), max_depth=20).run()
        assert result.found_violation
        assert result.first_violation.trace.final.y == 3

    def test_trace_replays(self):
        spec = counter_spec()
        result = DFSChecker(spec, max_depth=20).run()
        trace = result.first_violation.trace
        states = spec.replay(trace.labels, trace.initial)
        assert states[-1] == trace.final

    def test_completes_clean_space(self):
        result = DFSChecker(counter_spec(max_x=2, y_bound=9), max_depth=20).run()
        assert result.completed and not result.found_violation

    def test_depth_bound_blocks_deep_violation(self):
        result = DFSChecker(counter_spec(), max_depth=4).run()
        assert not result.found_violation

    def test_budget(self):
        result = DFSChecker(
            counter_spec(max_x=100, y_bound=99), max_depth=300, max_states=20
        ).run()
        assert result.budget_exhausted == "max_states"


class TestIterativeDeepening:
    def test_finds_minimal_depth(self):
        result = IterativeDeepeningChecker(
            counter_spec(), max_depth=20, step=1
        ).run()
        assert result.found_violation
        assert len(result.first_violation.trace) == 6  # same as BFS

    def test_clean_space(self):
        result = IterativeDeepeningChecker(
            counter_spec(max_x=2, y_bound=9), max_depth=10
        ).run()
        assert not result.found_violation


class TestCoverage:
    def test_counts_and_unfired(self):
        report = measure_coverage(counter_spec(y_bound=99))
        assert report.fired["IncX"] > 0
        assert report.fired["IncY"] > 0
        assert report.unfired() == ["NeverFires"]
        assert 0 < report.coverage_fraction() < 1

    def test_summary_mentions_unfired(self):
        report = measure_coverage(counter_spec(y_bound=99))
        assert "UNFIRED: NeverFires" in report.summary()

    def test_zookeeper_mspec1_full_coverage(self):
        from repro.zookeeper import ZkConfig, make_spec

        spec = make_spec(
            "mSpec-1",
            ZkConfig(
                max_txns=1, max_crashes=1, max_partitions=1, max_epoch=3,
                max_msg_faults=1,
            ),
        )
        # The message-fault actions enlarge the state space, so the rare
        # FollowerProcessCOMMITInSync path needs a deeper exploration
        # budget than the pre-fault-lane 30k states.
        report = measure_coverage(spec, max_states=120_000, max_time=90)
        # every action of the composition is reachable
        assert report.coverage_fraction() == 1.0, report.unfired()


class TestShrinking:
    def test_shrinks_random_walk_to_minimal(self):
        spec = counter_spec()
        # find a failing random walk (y reaches 3 eventually)
        walker = RandomWalker(spec, seed=1)
        failing = None
        for _ in range(200):
            trace = walker.walk(max_steps=30)
            if any(s.y > 2 for s in trace.states):
                cut = next(
                    k for k, s in enumerate(trace.states) if s.y > 2
                )
                failing = Trace(
                    states=trace.states[: cut + 1], labels=trace.labels[:cut]
                )
                break
        assert failing is not None
        shrunk = shrink_trace(
            spec, failing, violation_predicate(spec, "I-1")
        )
        assert len(shrunk) <= len(failing)
        assert len(shrunk) == 6  # the true minimum
        assert shrunk.final.y == 3

    def test_rejects_non_failing_trace(self):
        spec = counter_spec()
        init = spec.initial_states()[0]
        trace = Trace(states=[init], labels=[])
        with pytest.raises(ValueError):
            shrink_trace(spec, trace, violation_predicate(spec, "I-1"))

    def test_unknown_invariant(self):
        with pytest.raises(KeyError):
            violation_predicate(counter_spec(), "I-99")


class TestPretty:
    def test_format_state_hides_prefixes(self):
        state = State.make(SCHEMA, x=1, y=2)
        text = format_state(state, hide=("y",), hide_prefixes=())
        assert "x = 1" in text and "y" not in text

    def test_format_trace_shows_diffs_only(self):
        spec = counter_spec()
        result = BFSChecker(spec).run()
        text = format_trace(
            result.first_violation.trace, hide=(), hide_prefixes=()
        )
        assert "State 0 (initial):" in text
        assert "Step 1: IncX" in text
        assert "x: 0 -> 1" in text
        # unchanged variables are not repeated per step
        assert text.count("y = 0") == 1

    def test_format_trace_truncates(self):
        spec = counter_spec()
        result = BFSChecker(spec).run()
        text = format_trace(
            result.first_violation.trace,
            hide=(),
            hide_prefixes=(),
            max_steps=2,
        )
        assert "more steps" in text

    def test_zookeeper_trace_renders(self):
        from repro.zookeeper import ZkConfig, make_spec

        spec = make_spec(
            "mSpec-1",
            ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3),
        )
        result = BFSChecker(spec, max_states=50_000, max_time=60).run()
        assert result.found_violation
        text = format_trace(result.first_violation.trace)
        assert "ElectionAndDiscovery" in text
        assert "msgs" not in text  # hidden by default
        # ghost variables are hidden (msg_fault_budget, which merely
        # *contains* "g_", is not a ghost and may appear)
        assert "g_delivered" not in text
        assert "g_committed" not in text
