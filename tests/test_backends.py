"""Execution backends: the inline reference implementation, the fork
pool wrapper, the socket backend's wire protocol and worker-loss
reassignment, and the acceptance bar -- socket and fork campaigns are
bitwise-identical at a fixed seed."""

import json
import time

import pytest

from repro.checker import parallel
from repro.checker.backends import (
    BACKENDS,
    InlineBackend,
    create_backend,
    resolve_handler,
)
from repro.checker.backends.sockets import SocketBackend
from repro.remix.campaign import CampaignRequest, run_campaign

ECHO = "repro.checker.backends.testing:echo"
ADD_ONE = "repro.checker.backends.testing:add_one"
BOOM = "repro.checker.backends.testing:boom"
DIE_ONCE = "repro.checker.backends.testing:die_once"


class TestResolveHandler:
    def test_spec_resolves_to_function(self):
        handler = resolve_handler(ADD_ONE)
        assert handler({"value": 1}) == {"value": 2}

    def test_callable_passes_through(self):
        handler = resolve_handler(len)
        assert handler is len

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve_handler("no-colon-here")
        with pytest.raises(ValueError, match="non-callable"):
            resolve_handler("json:__name__")

    def test_missing_module_raises(self):
        with pytest.raises(ModuleNotFoundError):
            resolve_handler("no.such.module:fn")


class TestInlineBackend:
    def test_results_in_task_order(self):
        backend = InlineBackend(ADD_ONE)
        tasks = [{"value": n} for n in range(5)]
        assert backend.map(tasks) == [{"value": n + 1} for n in range(5)]

    def test_on_result_fires_per_task(self):
        seen = []
        backend = InlineBackend(ADD_ONE)
        backend.map(
            [{"value": 1}, {"value": 2}],
            on_result=lambda i, task, result: seen.append((i, result)),
        )
        assert seen == [(0, {"value": 2}), (1, {"value": 3})]

    def test_deadline_skips_remaining(self):
        backend = InlineBackend(ADD_ONE)
        results = backend.map(
            [{"value": 1}, {"value": 2}], deadline=time.monotonic() - 1
        )
        assert results == [None, None]


class TestCreateBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("carrier-pigeon", ECHO, 2)

    def test_fork_single_worker_degrades_to_inline(self):
        backend = create_backend("fork", ECHO, 1)
        assert backend.name == "inline"
        backend.close()

    @pytest.mark.skipif(not parallel.available(), reason="needs fork")
    def test_fork_multi_worker_is_fork(self):
        backend = create_backend("fork", ECHO, 2)
        try:
            assert backend.name == "fork"
            tasks = [{"value": n} for n in range(6)]
            assert backend.map(tasks) == tasks
        finally:
            backend.close()

    def test_names_cover_cli_choices(self):
        assert BACKENDS == ("fork", "socket", "chaos")


@pytest.mark.skipif(not parallel.available(), reason="needs subprocesses")
class TestSocketBackend:
    def test_map_returns_in_task_order(self):
        backend = SocketBackend(ADD_ONE, workers=2)
        try:
            tasks = [{"value": n} for n in range(10)]
            results = backend.map(tasks)
            assert results == [{"value": n + 1} for n in range(10)]
            # a second map on the same connections works too
            assert backend.map([{"value": 41}]) == [{"value": 42}]
        finally:
            backend.close()

    def test_on_result_sees_every_index(self):
        seen = set()
        backend = SocketBackend(ECHO, workers=2)
        try:
            backend.map(
                [{"value": n} for n in range(8)],
                on_result=lambda i, task, result: seen.add(i),
            )
            assert seen == set(range(8))
        finally:
            backend.close()

    def test_task_error_surfaces_as_runtime_error(self):
        backend = SocketBackend(BOOM, workers=1)
        try:
            with pytest.raises(RuntimeError, match="boom: 3"):
                backend.map([{"value": 3, "raise": True}])
        finally:
            backend.close()

    def test_callable_handler_rejected(self):
        with pytest.raises(ValueError, match="spec"):
            SocketBackend(len, workers=1)

    def test_worker_loss_reassigns_task(self, tmp_path):
        marker = tmp_path / "died"
        backend = SocketBackend(DIE_ONCE, workers=2)
        try:
            tasks = [{"value": n} for n in range(6)]
            tasks[2] = {"value": 2, "marker": str(marker)}
            results = backend.map(tasks)
            assert marker.exists(), "the marked task must kill a worker"
            assert [r["value"] for r in results] == list(range(6))
            assert results[2]["retried"] is True
        finally:
            backend.close()

    def test_deadline_skips_undispatched(self):
        backend = SocketBackend(ECHO, workers=1)
        try:
            results = backend.map(
                [{"value": n} for n in range(4)],
                deadline=time.monotonic() - 1,
            )
            assert results == [None, None, None, None]
        finally:
            backend.close()


@pytest.mark.skipif(not parallel.available(), reason="needs subprocesses")
class TestBackendIdentity:
    """The acceptance bar: ``--backend socket --workers 2`` produces a
    report bitwise-identical to the fork pool at the same seed."""

    KW = dict(
        grains=("mSpec-1",),
        scenarios=("election", "sync"),
        faults=("none", "crash-follower"),
        traces=1,
        max_steps=5,
        seed=7,
        workers=2,
        directions=("topdown", "bottomup"),
        shrink=True,
    )

    def test_socket_matches_fork_bitwise(self):
        fork = run_campaign(
            CampaignRequest(**self.KW, backend="fork")
        ).to_json()
        sock = run_campaign(
            CampaignRequest(**self.KW, backend="socket")
        ).to_json()
        for data in (fork, sock):
            data["campaign"].pop("elapsed_seconds", None)
        assert json.dumps(fork, sort_keys=True) == json.dumps(
            sock, sort_keys=True
        )
        assert fork["totals"]["distinct_findings"] > 0
