"""Unit tests for the coarse ElectionAndDiscovery action and the fault
module."""

from conftest import txn, zk_state
from repro.tla.values import ZXID_ZERO
from repro.zookeeper import constants as C
from repro.zookeeper.coarse import election_and_discovery
from repro.zookeeper.config import SpecVariant, ZkConfig
from repro.zookeeper.faults import (
    discard_stale_message,
    follower_shutdown,
    leader_shutdown,
    message_delay,
    message_duplicate,
    node_crash,
    node_restart,
    partition_heal,
    partition_start,
)
from repro.zookeeper import prims as P
from repro.tla.values import Rec

CFG = ZkConfig()


class TestElectionAndDiscovery:
    def test_elects_max_vote_holder(self):
        state = zk_state()
        updates = election_and_discovery(CFG, state, 2, (0, 1, 2))
        assert updates is not None
        assert updates["state"] == (C.FOLLOWING, C.FOLLOWING, C.LEADING)
        assert updates["zab_state"] == (
            C.SYNCHRONIZATION,
        ) * 3

    def test_refuses_non_maximal_candidate(self):
        assert election_and_discovery(CFG, zk_state(), 0, (0, 1, 2)) is None

    def test_epoch_wins_over_history(self):
        # ZK-4643's enabling interaction: higher currentEpoch with an
        # empty history beats a longer history at a lower epoch.
        state = zk_state(
            current_epoch=(2, 1, 1),
            history=((), (txn(1, 1),), ()),
        )
        assert election_and_discovery(CFG, state, 0, (0, 1)) is not None
        assert election_and_discovery(CFG, state, 1, (0, 1)) is None

    def test_refuses_non_quorum(self):
        assert election_and_discovery(CFG, zk_state(), 2, (2,)) is None

    def test_requires_all_looking(self):
        state = zk_state(state=(C.LOOKING, C.LEADING, C.LOOKING))
        assert election_and_discovery(CFG, state, 2, (1, 2)) is None

    def test_refuses_partitioned_quorum(self):
        state = zk_state(disconnected=frozenset({frozenset({1, 2})}))
        assert election_and_discovery(CFG, state, 2, (1, 2)) is None

    def test_bumps_epoch_for_quorum_members(self):
        state = zk_state(accepted_epoch=(2, 1, 1))
        updates = election_and_discovery(CFG, state, 2, (1, 2))
        assert updates["accepted_epoch"] == (2, 2, 2)
        assert updates["current_epoch"][2] == 2

    def test_leader_learns_follower_credentials(self):
        state = zk_state(
            history=((), (txn(1, 1),), (txn(1, 1), txn(1, 2))),
            current_epoch=(0, 1, 1),
        )
        updates = election_and_discovery(CFG, state, 2, (1, 2))
        assert updates["ackepoch_recv"][2] == frozenset(
            {(1, 1, txn(1, 1).zxid)}
        )

    def test_respects_epoch_bound(self):
        cfg = ZkConfig(max_epoch=1)
        state = zk_state(cfg, accepted_epoch=(1, 1, 1))
        assert election_and_discovery(cfg, state, 2, (1, 2)) is None

    def test_outsiders_untouched(self):
        state = zk_state()
        updates = election_and_discovery(CFG, state, 2, (1, 2))
        assert updates["state"][0] == C.LOOKING
        assert updates["accepted_epoch"][0] == 0


class TestCrashRestart:
    def test_crash_clears_volatile_keeps_durable(self):
        t = txn(1, 1)
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.LOOKING),
            history=((t,), (), ()),
            current_epoch=(1, 1, 0),
            queued_requests=(((t, 1),), (), ()),
        )
        updates = node_crash(CFG, state, 0)
        assert updates["state"][0] == C.DOWN
        assert updates["queued_requests"][0] == ()
        assert "history" not in updates  # durable
        assert updates["crash_budget"] == CFG.max_crashes - 1

    def test_crash_respects_budget(self):
        state = zk_state(crash_budget=0)
        assert node_crash(CFG, state, 0) is None

    def test_crash_requires_up(self):
        state = zk_state(state=(C.DOWN, C.LOOKING, C.LOOKING))
        assert node_crash(CFG, state, 0) is None

    def test_restart_rejoins_looking_with_own_vote(self):
        t = txn(1, 1)
        state = zk_state(
            state=(C.DOWN, C.LOOKING, C.LOOKING),
            history=((t,), (), ()),
            current_epoch=(1, 0, 0),
        )
        updates = node_restart(CFG, state, 0)
        assert updates["state"][0] == C.LOOKING
        vote = updates["current_vote"][0]
        assert (vote.epoch, vote.zxid, vote.sid) == (1, t.zxid, 0)

    def test_restart_requires_down(self):
        assert node_restart(CFG, zk_state(), 0) is None


class TestPartitions:
    def test_partition_uses_budget_and_clears_channels(self):
        state = zk_state()
        state = state.set(msgs=P.send(state["msgs"], 0, 1, Rec(mtype="A")))
        updates = partition_start(CFG, state, 0, 1)
        assert frozenset({0, 1}) in updates["disconnected"]
        assert updates["msgs"][0][1] == ()
        assert updates["partition_budget"] == CFG.max_partitions - 1

    def test_partition_budget_exhausted(self):
        state = zk_state(partition_budget=0)
        assert partition_start(CFG, state, 0, 1) is None

    def test_heal(self):
        state = zk_state(disconnected=frozenset({frozenset({0, 1})}))
        updates = partition_heal(CFG, state, 0, 1)
        assert updates["disconnected"] == frozenset()

    def test_heal_requires_partition(self):
        assert partition_heal(CFG, zk_state(), 0, 1) is None


class TestShutdowns:
    def follower_state(self, leader_state=C.DOWN, **extra):
        return zk_state(
            state=(C.FOLLOWING, leader_state, C.LOOKING),
            my_leader=(1, -1, -1),
            queued_requests=(((txn(1, 1), 1),), (), ()),
            **extra,
        )

    def test_shutdown_on_dead_leader_keeps_queue(self):
        updates = follower_shutdown(CFG, self.follower_state(), 0)
        assert updates["state"][0] == C.LOOKING
        assert "queued_requests" not in updates  # ZK-4712: queue survives

    def test_fixed_shutdown_clears_queue(self):
        cfg = ZkConfig(variant=SpecVariant(fix_follower_shutdown=True))
        updates = follower_shutdown(cfg, self.follower_state(), 0)
        assert updates["queued_requests"][0] == ()

    def test_no_shutdown_while_leader_alive(self):
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.LOOKING), my_leader=(1, -1, -1)
        )
        assert follower_shutdown(CFG, state, 0) is None

    def test_shutdown_when_leader_moved_to_new_epoch(self):
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.LOOKING),
            my_leader=(1, -1, -1),
            accepted_epoch=(1, 2, 2),
        )
        assert follower_shutdown(CFG, state, 0) is not None

    def test_leader_shutdown_on_quorum_loss(self):
        state = zk_state(
            state=(C.DOWN, C.LEADING, C.DOWN), my_leader=(-1, 1, -1)
        )
        updates = leader_shutdown(CFG, state, 1)
        assert updates["state"][1] == C.LOOKING

    def test_leader_keeps_leading_with_quorum(self):
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.DOWN), my_leader=(1, 1, -1)
        )
        assert leader_shutdown(CFG, state, 1) is None


class TestDiscardStale:
    def test_drops_followerinfo_at_non_leader(self):
        state = zk_state()
        state = state.set(
            msgs=P.send(state["msgs"], 1, 0, Rec(mtype=C.FOLLOWERINFO, epoch=0))
        )
        updates = discard_stale_message(CFG, state, 0, 1)
        assert updates["msgs"][1][0] == ()

    def test_keeps_message_from_current_leader(self):
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.LOOKING), my_leader=(1, -1, -1)
        )
        state = state.set(
            msgs=P.send(state["msgs"], 1, 0, Rec(mtype=C.COMMIT, zxid=ZXID_ZERO))
        )
        assert discard_stale_message(CFG, state, 0, 1) is None

    def test_drops_leader_message_from_stale_leader(self):
        state = zk_state(
            state=(C.FOLLOWING, C.LEADING, C.LOOKING), my_leader=(-1, -1, -1)
        )
        state = state.set(
            msgs=P.send(state["msgs"], 1, 0, Rec(mtype=C.COMMIT, zxid=ZXID_ZERO))
        )
        assert discard_stale_message(CFG, state, 0, 1) is not None

    def test_drops_ack_from_non_learner(self):
        state = zk_state(state=(C.LEADING, C.LOOKING, C.LOOKING))
        state = state.set(
            msgs=P.send(state["msgs"], 1, 0, Rec(mtype=C.ACK, zxid=ZXID_ZERO))
        )
        assert discard_stale_message(CFG, state, 0, 1) is not None


class TestMessageFaults:
    """The budgeted delay/duplication actions (pair = (receiver i,
    sender j): both operate on channel j -> i)."""

    def in_flight(self, *mtypes, budget=1):
        state = zk_state(ZkConfig(max_msg_faults=budget))
        msgs = P.send(
            state["msgs"], 2, 0, *(Rec(mtype=m) for m in mtypes)
        )
        return state.set(msgs=msgs)

    def test_delay_rotates_head_behind(self):
        updates = message_delay(CFG, self.in_flight("A", "B"), 0, 2)
        assert updates is not None
        assert tuple(m.mtype for m in updates["msgs"][2][0]) == ("B", "A")
        assert updates["msg_fault_budget"] == 0

    def test_delay_needs_two_in_flight(self):
        assert message_delay(CFG, self.in_flight("A"), 0, 2) is None

    def test_delay_refused_without_budget(self):
        state = self.in_flight("A", "B", budget=0)
        assert message_delay(CFG, state, 0, 2) is None

    def test_duplicate_redelivers_head_at_tail(self):
        updates = message_duplicate(CFG, self.in_flight("A", "B"), 0, 2)
        assert updates is not None
        assert tuple(m.mtype for m in updates["msgs"][2][0]) == (
            "A", "B", "A",
        )
        assert updates["msg_fault_budget"] == 0

    def test_duplicate_needs_a_message(self):
        state = zk_state(ZkConfig(max_msg_faults=1))
        assert message_duplicate(CFG, state, 0, 2) is None

    def test_budget_is_shared_between_delay_and_duplicate(self):
        state = self.in_flight("A", "B")
        state = state.set(**message_delay(CFG, state, 0, 2))
        assert message_duplicate(CFG, state, 0, 2) is None
