"""Property-based tests over the model's reachable states.

Random walks (seeded by hypothesis) explore the specification and check
structural invariants of the state representation on every visited state
-- properties that must hold at *every* granularity and variant, bug or
no bug:

- committed watermarks never exceed history lengths;
- per-server delivery sequences are consistent with the global commit
  sequence (the order in which a server delivers is a subsequence of
  g_committed, up to late local deliveries of earlier commits);
- zxids within a history are strictly increasing;
- the fixed (final) variant additionally preserves all ten protocol
  invariants along every random walk.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import RandomWalker
from repro.zab.invariants import protocol_invariants
from repro.zookeeper import FINAL_FIX, ZkConfig, make_spec
from repro.zookeeper.specs import build_spec, SELECTIONS

SPEC_NAMES = ("mSpec-1", "mSpec-2", "mSpec-3")

_CFG = ZkConfig(max_txns=2, max_crashes=1, max_partitions=1, max_epoch=3)
_SPECS = {name: make_spec(name, _CFG) for name in SPEC_NAMES}
_FIXED = build_spec(
    "FinalFix", SELECTIONS["mSpec-3"], _CFG.with_variant(FINAL_FIX)
)

walk_params = st.tuples(
    st.sampled_from(SPEC_NAMES), st.integers(min_value=0, max_value=10_000)
)


def states_of_walk(spec, seed, steps=25):
    return RandomWalker(spec, seed=seed).walk(max_steps=steps).states


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(walk_params)
def test_commit_watermark_bounded(params):
    name, seed = params
    spec = _SPECS[name]
    for state in states_of_walk(spec, seed):
        for i in spec.config.servers:
            assert 0 <= state["last_committed"][i] <= len(state["history"][i])


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(walk_params)
def test_zxids_strictly_increase_within_history(params):
    name, seed = params
    spec = _SPECS[name]
    for state in states_of_walk(spec, seed):
        for history in state["history"]:
            zxids = [t.zxid for t in history]
            assert zxids == sorted(zxids)
            assert len(set(zxids)) == len(zxids)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(walk_params)
def test_delivery_is_subsequence_of_global_commit(params):
    name, seed = params
    spec = _SPECS[name]
    for state in states_of_walk(spec, seed):
        committed = list(state["g_committed"])
        for delivered in state["g_delivered"]:
            assert set(delivered) <= set(committed)
            positions = [committed.index(t) for t in delivered]
            assert positions == sorted(positions)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(walk_params)
def test_epochs_monotone(params):
    name, seed = params
    spec = _SPECS[name]
    trace = RandomWalker(spec, seed=seed).walk(max_steps=25)
    for before, _, after in trace.steps():
        for i in spec.config.servers:
            assert after["accepted_epoch"][i] >= before["accepted_epoch"][i]
            assert after["current_epoch"][i] >= before["current_epoch"][i]
        # the global commit sequence is append-only
        n = len(before["g_committed"])
        assert after["g_committed"][:n] == before["g_committed"]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=50_000))
def test_final_fix_preserves_protocol_invariants(seed):
    invariants = protocol_invariants()
    for state in states_of_walk(_FIXED, seed, steps=30):
        for inv in invariants:
            assert inv.holds(_FIXED.config, state), inv.ident


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(walk_params)
def test_durable_state_survives_crash(params):
    name, seed = params
    spec = _SPECS[name]
    trace = RandomWalker(spec, seed=seed).walk(max_steps=25)
    for before, label, after in trace.steps():
        if label.name != "NodeCrash":
            continue
        i = label.args["i"]
        assert after["history"][i] == before["history"][i]
        assert after["current_epoch"][i] == before["current_epoch"][i]
        assert after["accepted_epoch"][i] == before["accepted_epoch"][i]
        # volatile state is gone
        assert after["queued_requests"][i] == ()
        assert after["committed_requests"][i] == ()
