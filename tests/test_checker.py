"""Tests for the BFS checker, random walker and traces."""

import pytest

from repro.checker import BFSChecker, RandomWalker, Trace, check
from repro.checker.trace import traces_project_equal
from repro.tla.action import Action, ActionLabel
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State

SCHEMA = Schema(("x", "y"))


def counter_spec(max_x=4, y_bound=2, constraint=None):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
        ],
    )
    return Specification(
        "counter",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
        constraint=constraint,
    )


class TestBFS:
    def test_finds_minimal_depth_violation(self):
        result = BFSChecker(counter_spec()).run()
        assert result.found_violation
        # minimal: x must reach 3 before y can (IncX*3 then IncY*3)
        assert result.first_violation.depth == 6

    def test_violation_trace_replays(self):
        spec = counter_spec()
        result = BFSChecker(spec).run()
        trace = result.first_violation.trace
        states = spec.replay(trace.labels, trace.initial)
        assert states[-1] == trace.final

    def test_completes_when_no_violation(self):
        result = BFSChecker(counter_spec(max_x=2, y_bound=5)).run()
        assert result.completed
        assert not result.found_violation
        # states: x in 0..2, y in 0..x -> 1+2+3 = 6
        assert result.states_explored == 6

    def test_max_states_budget(self):
        result = BFSChecker(counter_spec(max_x=50, y_bound=99), max_states=10).run()
        assert result.budget_exhausted == "max_states"
        assert not result.completed

    def test_max_depth_budget(self):
        result = BFSChecker(counter_spec(y_bound=99), max_depth=2).run()
        assert result.max_depth <= 3
        assert not result.found_violation

    def test_run_to_completion_collects_violations(self):
        result = BFSChecker(
            counter_spec(max_x=4, y_bound=2),
            stop_at_first=False,
            violation_limit=100,
        ).run()
        assert len(result.violations) > 1
        assert result.violated_invariant_ids() == ["I-1"]

    def test_violation_limit(self):
        result = BFSChecker(
            counter_spec(max_x=6, y_bound=1),
            stop_at_first=False,
            violation_limit=2,
        ).run()
        assert len(result.violations) == 2
        assert result.budget_exhausted == "violation_limit"

    def test_error_states_are_terminal(self):
        # The violating state (y == 3) must not be expanded: no state
        # with y == 4 is reachable.
        result = BFSChecker(
            counter_spec(max_x=9, y_bound=2),
            stop_at_first=False,
            violation_limit=10_000,
        ).run()
        for violation in result.violations:
            assert violation.trace.final.y == 3

    def test_mask_hides_and_prunes(self):
        masked = BFSChecker(
            counter_spec(), mask=lambda s: s.y >= 3, stop_at_first=False
        ).run()
        assert not masked.found_violation
        assert masked.completed

    def test_constraint_bounds_exploration(self):
        spec = counter_spec(max_x=50, y_bound=99,
                            constraint=lambda cfg, s: s.x <= 2)
        result = BFSChecker(spec).run()
        assert result.completed
        assert max(s for s in [result.max_depth]) <= 6

    def test_check_wrapper(self):
        assert check(counter_spec()).found_violation

    def test_summary_mentions_invariant(self):
        result = BFSChecker(counter_spec()).run()
        assert "I-1" in result.summary()


class TestRandomWalker:
    def test_deterministic_by_seed(self):
        spec = counter_spec(y_bound=99)
        a = RandomWalker(spec, seed=3).traces(count=5, max_steps=10)
        b = RandomWalker(spec, seed=3).traces(count=5, max_steps=10)
        assert [t.labels for t in a] == [t.labels for t in b]

    def test_different_seeds_differ(self):
        spec = counter_spec(y_bound=99)
        a = RandomWalker(spec, seed=1).traces(count=8, max_steps=10)
        b = RandomWalker(spec, seed=2).traces(count=8, max_steps=10)
        assert [t.labels for t in a] != [t.labels for t in b]

    def test_walk_stops_in_deadlock(self):
        spec = counter_spec(max_x=1, y_bound=99)
        trace = RandomWalker(spec, seed=0).walk(max_steps=50)
        assert len(trace) <= 2  # IncX once, IncY once

    def test_stop_when_truncates(self):
        spec = counter_spec(y_bound=99)
        traces = RandomWalker(spec, seed=5).traces(
            count=10, max_steps=20, stop_when=lambda s: s.x >= 2
        )
        for trace in traces:
            for state in trace.states[:-1]:
                assert state.x < 2

    def test_walk_states_consistent_with_labels(self):
        spec = counter_spec(y_bound=99)
        trace = RandomWalker(spec, seed=9).walk(max_steps=10)
        replayed = spec.replay(trace.labels, trace.initial)
        assert replayed == trace.states


class TestTrace:
    def test_length_mismatch_rejected(self):
        s = State.make(SCHEMA, x=0, y=0)
        with pytest.raises(ValueError):
            Trace(states=[s], labels=[ActionLabel("A")])

    def test_steps_iteration(self):
        s0 = State.make(SCHEMA, x=0, y=0)
        s1 = s0.set(x=1)
        trace = Trace(states=[s0, s1], labels=[ActionLabel("IncX")])
        steps = list(trace.steps())
        assert steps == [(s0, ActionLabel("IncX"), s1)]

    def test_projection_condenses_stuttering(self):
        s0 = State.make(SCHEMA, x=0, y=0)
        s1 = s0.set(y=1)  # invisible when projecting on x
        s2 = s1.set(x=1)
        trace = Trace(
            states=[s0, s1, s2],
            labels=[ActionLabel("IncY"), ActionLabel("IncX")],
        )
        assert trace.project(frozenset({"x"})) == ((0,), (1,))

    def test_traces_project_equal(self):
        s0 = State.make(SCHEMA, x=0, y=0)
        t1 = Trace(states=[s0, s0.set(y=1)], labels=[ActionLabel("IncY")])
        t2 = Trace(states=[s0], labels=[])
        assert traces_project_equal([t1], [t2], frozenset({"x"}))
        assert not traces_project_equal([t1], [t2], frozenset({"y"}))

    def test_describe_truncates(self):
        s0 = State.make(SCHEMA, x=0, y=0)
        states = [s0.set(x=i) for i in range(6)]
        trace = Trace(
            states=states, labels=[ActionLabel("IncX")] * 5
        )
        text = trace.describe(max_steps=3)
        assert "2 more" in text
