"""Unit tests for the ten protocol invariants (Table 2, I-1..I-10).

Each invariant is exercised with a hand-built satisfying state and a
hand-built violating state, using the ZooKeeper schema's ghost variables.
"""

from conftest import established, txn, zk_state

from repro.zab.invariants import (
    i1_primary_uniqueness,
    i2_integrity,
    i3_agreement,
    i4_total_order,
    i5_local_primary_order,
    i6_global_primary_order,
    i7_primary_integrity,
    i8_initial_history_integrity,
    i9_commit_consistency,
    i10_history_consistency,
    protocol_invariants,
)

T1 = txn(1, 1)
T2 = txn(1, 2)
T3 = txn(2, 1)


class TestI1PrimaryUniqueness:
    def test_holds_with_distinct_epochs(self):
        state = zk_state(g_leaders=((1, 0), (2, 1)))
        assert i1_primary_uniqueness(None, state)

    def test_duplicate_establishment_same_leader_ok(self):
        state = zk_state(g_leaders=((1, 0), (1, 0)))
        assert i1_primary_uniqueness(None, state)

    def test_violated_by_two_leaders_in_one_epoch(self):
        state = zk_state(g_leaders=((1, 0), (1, 2)))
        assert not i1_primary_uniqueness(None, state)


class TestI2Integrity:
    def test_holds_when_delivered_was_proposed(self):
        state = zk_state(
            g_proposed=frozenset({T1}), g_delivered=((T1,), (), ())
        )
        assert i2_integrity(None, state)

    def test_violated_by_phantom_delivery(self):
        state = zk_state(g_delivered=((T1,), (), ()))
        assert not i2_integrity(None, state)


class TestI3Agreement:
    def test_holds_on_subset_deliveries(self):
        state = zk_state(g_delivered=((T1, T2), (T1,), ()))
        assert i3_agreement(None, state)

    def test_violated_by_incomparable_sets(self):
        state = zk_state(g_delivered=((T1,), (T2,), ()))
        assert not i3_agreement(None, state)


class TestI4TotalOrder:
    def test_holds_on_same_order(self):
        state = zk_state(g_delivered=((T1, T2), (T1, T2), (T1,)))
        assert i4_total_order(None, state)

    def test_violated_by_swapped_order(self):
        state = zk_state(g_delivered=((T1, T2), (T2, T1), ()))
        assert not i4_total_order(None, state)

    def test_violated_by_skipped_predecessor(self):
        # server 0 delivers T1 before T2; server 1 delivers T2 without T1.
        state = zk_state(g_delivered=((T1, T2), (T2,), ()))
        assert not i4_total_order(None, state)


class TestI5LocalPrimaryOrder:
    def test_holds_in_counter_order(self):
        state = zk_state(
            g_proposed=frozenset({T1, T2}), g_delivered=((T1, T2), (), ())
        )
        assert i5_local_primary_order(None, state)

    def test_violated_by_skipping_earlier_broadcast(self):
        state = zk_state(
            g_proposed=frozenset({T1, T2}), g_delivered=((T2,), (), ())
        )
        assert not i5_local_primary_order(None, state)


class TestI6GlobalPrimaryOrder:
    def test_holds_with_nondecreasing_epochs(self):
        state = zk_state(g_delivered=((T1, T3), (), ()))
        assert i6_global_primary_order(None, state)

    def test_violated_by_epoch_regression(self):
        state = zk_state(g_delivered=((T3, T1), (), ()))
        assert not i6_global_primary_order(None, state)


class TestI7PrimaryIntegrity:
    def test_holds_when_leader_delivered_older_first(self):
        state = zk_state(
            g_leaders=((2, 1),),
            g_proposed=frozenset({T1, T3}),
            g_delivered=((T1,), (T1, T3), ()),
        )
        assert i7_primary_integrity(None, state)

    def test_violated_when_leader_missed_older_delivery(self):
        # leader of epoch 2 broadcast T3 but never delivered T1, which
        # server 0 delivered in epoch 1.
        state = zk_state(
            g_leaders=((2, 1),),
            g_proposed=frozenset({T1, T3}),
            g_delivered=((T1,), (T3,), ()),
        )
        assert not i7_primary_integrity(None, state)


class TestI8InitialHistoryIntegrity:
    def test_holds_when_initial_extends_committed(self):
        state = zk_state(
            g_established=(established(2, initial=(T1, T2), committed=(T1,)),)
        )
        assert i8_initial_history_integrity(None, state)

    def test_violated_by_lost_committed_txn(self):
        # the ZK-4643 / ZK-4646 shape: epoch established with an initial
        # history missing a committed transaction.
        state = zk_state(
            g_established=(established(3, initial=(), committed=(T1,)),)
        )
        assert not i8_initial_history_integrity(None, state)


class TestI9CommitConsistency:
    def test_holds_when_delivery_extends_initial(self):
        state = zk_state(
            current_epoch=(2, 0, 0),
            g_established=(established(2, initial=(T1,), committed=()),),
            g_delivered=((T1, T3), (), ()),
        )
        assert i9_commit_consistency(None, state)

    def test_not_applicable_before_epoch_delivery(self):
        state = zk_state(
            current_epoch=(2, 0, 0),
            g_established=(established(2, initial=(T1,), committed=()),),
            g_delivered=((), (), ()),
        )
        assert i9_commit_consistency(None, state)

    def test_violated_when_initial_skipped(self):
        state = zk_state(
            current_epoch=(2, 0, 0),
            g_established=(established(2, initial=(T1,), committed=()),),
            g_delivered=((T3,), (), ()),
        )
        assert not i9_commit_consistency(None, state)


class TestI10HistoryConsistency:
    def test_holds_on_prefix_histories(self):
        state = zk_state(
            history=((T1, T2), (T1,), ()),
            current_epoch=(1, 1, 0),
            zab_state=("BROADCAST", "BROADCAST", "ELECTION"),
            g_participants=((1, frozenset({0, 1})),),
        )
        assert i10_history_consistency(None, state)

    def test_violated_by_divergent_active_histories(self):
        state = zk_state(
            history=((T1, T2), (T1, T3), ()),
            current_epoch=(1, 1, 0),
            zab_state=("BROADCAST", "BROADCAST", "ELECTION"),
            g_participants=((1, frozenset({0, 1})),),
        )
        assert not i10_history_consistency(None, state)

    def test_syncing_participant_excluded(self):
        # A participant still synchronizing into a newer epoch is not
        # compared (its history may legally be mid-truncation).
        state = zk_state(
            history=((T1, T2), (T1, T3), ()),
            current_epoch=(1, 1, 0),
            zab_state=("BROADCAST", "SYNCHRONIZATION", "ELECTION"),
            g_participants=((1, frozenset({0, 1})),),
        )
        assert i10_history_consistency(None, state)


class TestCatalog:
    def test_ten_invariants(self):
        invariants = protocol_invariants()
        assert len(invariants) == 10
        assert [inv.ident for inv in invariants] == [
            f"I-{k}" for k in range(1, 11)
        ]

    def test_all_protocol_sourced(self):
        assert all(inv.source == "protocol" for inv in protocol_invariants())

    def test_initial_state_satisfies_all(self, config=None):
        state = zk_state()
        for inv in protocol_invariants():
            assert inv.holds(None, state), inv.ident
