"""Tests for the Zab protocol specification and the §5.4 improvement.

The headline protocol-level result: the original (atomic) protocol and
the improved (history-before-epoch) protocol satisfy all ten invariants;
the order ZooKeeper implemented (epoch first) violates I-8.
"""

import pytest

from repro.checker import BFSChecker
from repro.zab import ZabConfig, zab_spec


def small(variant, **kw):
    return ZabConfig(
        max_txns=kw.pop("max_txns", 1),
        max_crashes=kw.pop("max_crashes", 1),
        max_epoch=kw.pop("max_epoch", 2),
        variant=variant,
    )


class TestVariants:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ZabConfig(variant="nope")

    def test_spec_names_carry_variant(self):
        assert zab_spec(small("improved")).name == "Zab-improved"

    def test_original_uses_atomic_accept(self):
        spec = zab_spec(small("original"))
        names = [a.name for a in spec.actions]
        assert "FollowerAcceptNEWLEADER" in names

    def test_improved_splits_accept(self):
        spec = zab_spec(small("improved"))
        init = spec.initial_states()[0]
        # only the improved variant's split actions ever fire
        enabled_names = set()
        frontier = [init]
        for _ in range(4):
            nxt = []
            for state in frontier[:20]:
                for label, succ in spec.successors(state):
                    enabled_names.add(label.name)
                    nxt.append(succ)
            frontier = nxt
        assert "FollowerUpdateHistory" in enabled_names
        assert "FollowerAcceptNEWLEADER" not in enabled_names


class TestModelChecking:
    def test_original_protocol_passes(self):
        result = BFSChecker(
            zab_spec(small("original")), max_states=120_000, max_time=120
        ).run()
        assert not result.found_violation

    def test_improved_protocol_passes(self):
        result = BFSChecker(
            zab_spec(small("improved")), max_states=120_000, max_time=120
        ).run()
        assert not result.found_violation

    @pytest.mark.slow
    def test_improved_protocol_passes_with_more_faults(self):
        cfg = small("improved", max_crashes=2, max_epoch=3)
        result = BFSChecker(
            zab_spec(cfg), max_states=200_000, max_time=240
        ).run()
        assert not result.found_violation

    @pytest.mark.slow
    def test_epoch_first_violates_i8(self):
        # The ablation of §5.4: the non-atomic epoch-before-history order
        # (what ZooKeeper implemented) breaks initial history integrity.
        cfg = small("epoch_first", max_crashes=2, max_epoch=3)
        result = BFSChecker(
            zab_spec(cfg), max_states=400_000, max_time=240
        ).run()
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-8"
        labels = [l.name for l in result.first_violation.trace.labels]
        assert "FollowerUpdateEpochFirst" in labels
        assert "NodeCrash" in labels


class TestCoverage:
    def test_variant_gated_actions_are_the_only_unfired(self):
        from repro.checker import measure_coverage

        expected = {
            "original": {
                "FollowerUpdateHistory",
                "FollowerUpdateEpoch",
                "FollowerUpdateEpochFirst",
                "FollowerUpdateHistorySecond",
            },
            "improved": {
                "FollowerAcceptNEWLEADER",
                "FollowerUpdateEpochFirst",
                "FollowerUpdateHistorySecond",
            },
        }
        for variant, unfired in expected.items():
            spec = zab_spec(
                ZabConfig(
                    max_txns=1, max_crashes=1, max_epoch=2, variant=variant
                )
            )
            report = measure_coverage(spec, max_states=20_000, max_time=60)
            assert set(report.unfired()) == unfired
