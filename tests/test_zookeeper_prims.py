"""Unit and property tests for the model primitives."""

from hypothesis import given, strategies as st

from conftest import txn, zk_state
from repro.tla.values import Rec, Zxid, ZXID_ZERO
from repro.zookeeper import constants as C
from repro.zookeeper import prims as P


class TestNetwork:
    def test_send_appends_fifo(self):
        state = zk_state()
        msgs = P.send(state["msgs"], 0, 1, Rec(mtype="A"), Rec(mtype="B"))
        assert [m.mtype for m in msgs[0][1]] == ["A", "B"]

    def test_peek_and_pop(self):
        state = zk_state()
        msgs = P.send(state["msgs"], 0, 1, Rec(mtype="A"), Rec(mtype="B"))
        state = state.set(msgs=msgs)
        assert P.peek(state, 0, 1).mtype == "A"
        state = state.set(msgs=P.pop(state["msgs"], 0, 1))
        assert P.peek(state, 0, 1).mtype == "B"

    def test_peek_empty(self):
        assert P.peek(zk_state(), 0, 1) is None

    def test_connected_requires_both_up(self):
        state = zk_state(state=(C.DOWN, C.LOOKING, C.LOOKING))
        assert not P.connected(state, 0, 1)
        assert P.connected(state, 1, 2)

    def test_connected_respects_partition(self):
        state = zk_state(disconnected=frozenset({frozenset({0, 1})}))
        assert not P.connected(state, 0, 1)
        assert P.connected(state, 0, 2)

    def test_send_if_connected_drops(self):
        state = zk_state(disconnected=frozenset({frozenset({0, 1})}))
        msgs = P.send_if_connected(state, state["msgs"], 0, 1, Rec(mtype="A"))
        assert msgs[0][1] == ()

    def test_clear_channels(self):
        state = zk_state()
        msgs = P.send(state["msgs"], 0, 1, Rec(mtype="A"))
        msgs = P.send(msgs, 1, 0, Rec(mtype="B"))
        msgs = P.send(msgs, 1, 2, Rec(mtype="C"))
        cleared = P.clear_channels(msgs, 0)
        assert cleared[0][1] == () and cleared[1][0] == ()
        assert cleared[1][2][0].mtype == "C"

    def test_clear_pair(self):
        state = zk_state()
        msgs = P.send(state["msgs"], 0, 1, Rec(mtype="A"))
        msgs = P.send(msgs, 1, 0, Rec(mtype="B"))
        cleared = P.clear_pair(msgs, 0, 1)
        assert cleared[0][1] == () and cleared[1][0] == ()


class TestVotes:
    def test_epoch_dominates_zxid(self):
        state = zk_state(
            current_epoch=(2, 1, 1),
            history=((), (txn(1, 1),), ()),
        )
        # server 0 has a higher epoch but an empty history: it wins.
        assert P.vote_of(state, 0) > P.vote_of(state, 1)
        assert P.max_vote_holder(state, (0, 1, 2)) == 0

    def test_zxid_breaks_epoch_ties(self):
        state = zk_state(history=((), (txn(1, 1),), ()))
        assert P.max_vote_holder(state, (0, 1)) == 1

    def test_sid_breaks_full_ties(self):
        assert P.max_vote_holder(zk_state(), (0, 1, 2)) == 2


class TestCommitGhosts:
    def test_advance_commit_updates_all_ghosts(self):
        t = txn(1, 1)
        state = zk_state(history=((t,), (), ()))
        updates = P.advance_commit(state, 0, 1)
        assert updates["last_committed"][0] == 1
        assert updates["g_delivered"][0] == (t,)
        assert updates["g_committed"] == (t,)

    def test_advance_commit_noop(self):
        state = zk_state()
        assert P.advance_commit(state, 0, 0) == {}

    def test_advance_commit_bounded_by_history(self):
        t = txn(1, 1)
        state = zk_state(history=((t,), (), ()))
        updates = P.advance_commit(state, 0, 99)
        assert updates["last_committed"][0] == 1

    def test_deliver_deduplicates(self):
        t = txn(1, 1)
        delivered = ((t,), (), ())
        assert P.deliver(delivered, 0, (t,)) is delivered

    def test_commit_globally_deduplicates_but_appends_new(self):
        t1, t2 = txn(1, 1), txn(1, 2)
        assert P.commit_globally((t1,), (t1, t2)) == (t1, t2)


class TestErrors:
    def test_raise_error_records_bug_id(self):
        state = zk_state()
        updates = P.raise_error(state, C.ERR_COMMIT_UNMATCHED_IN_SYNC, 1)
        (err,) = updates["errors"]
        assert err.bug == "ZK-4394" and err.server == 1

    def test_has_error(self):
        state = zk_state()
        state = state.set(**P.raise_error(state, C.ERR_PROPOSAL_GAP, 0))
        assert P.has_error(state, C.ERR_PROPOSAL_GAP)
        assert not P.has_error(state, C.ERR_COMMIT_UNKNOWN_TXN)


class TestHistoryUtils:
    def test_index_of_zxid(self):
        history = (txn(1, 1), txn(1, 2))
        assert P.index_of_zxid(history, Zxid(1, 2)) == 1
        assert P.index_of_zxid(history, Zxid(9, 9)) == -1

    def test_next_zxid_fresh_epoch(self):
        state = zk_state(current_epoch=(2, 0, 0), history=((txn(1, 5),), (), ()))
        assert P.next_zxid(state, 0) == Zxid(2, 1)

    def test_next_zxid_continues_counter(self):
        state = zk_state(
            current_epoch=(1, 0, 0), history=((txn(1, 1), txn(1, 2)), (), ())
        )
        assert P.next_zxid(state, 0) == Zxid(1, 3)

    def test_common_prefix_len(self):
        a = (txn(1, 1), txn(1, 2))
        b = (txn(1, 1), txn(2, 1))
        assert P.common_prefix_len(a, b) == 1

    def test_is_learner(self):
        state = zk_state(
            ackepoch_recv=(frozenset({(1, 0, ZXID_ZERO)}), frozenset(), frozenset())
        )
        assert P.is_learner(state, 0, 1)
        assert not P.is_learner(state, 0, 2)


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=6))
def test_fifo_order_preserved(payloads):
    state = zk_state()
    msgs = state["msgs"]
    for p in payloads:
        msgs = P.send(msgs, 0, 1, Rec(mtype="M", value=p))
    received = []
    state = state.set(msgs=msgs)
    while P.peek(state, 0, 1) is not None:
        received.append(P.peek(state, 0, 1).value)
        state = state.set(msgs=P.pop(state["msgs"], 0, 1))
    assert received == payloads


@given(
    st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 5)).map(
            lambda pair: txn(pair[0], pair[1])
        ),
        max_size=6,
    ),
    st.integers(0, 8),
)
def test_advance_commit_monotone_and_prefix(history, target):
    history = tuple(dict.fromkeys(history))  # unique txns
    state = zk_state(history=(history, (), ()))
    updates = P.advance_commit(state, 0, target)
    if updates:
        count = updates["last_committed"][0]
        assert 0 < count <= len(history)
        assert updates["g_delivered"][0] == history[:count]
        assert updates["g_committed"] == history[:count]
