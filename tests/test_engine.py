"""Tests for the unified exploration engine: fingerprinting, guard and
invariant memoization soundness, parallel determinism, portfolio racing,
and shrink round-trips on engine-produced traces."""

import pickle
import random

import pytest

from repro.checker import (
    BFSChecker,
    ExplorationEngine,
    Fingerprinter,
    IncrementalFingerprinter,
    RandomWalker,
    explore,
    shrink_trace,
    violation_predicate,
)
from repro.checker.engine import STRATEGIES, CompiledSpec, compiled_for
from repro.checker.fingerprint import FingerprintError, canonical_bytes
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State
from repro.tla.values import Rec, Txn, Zxid
from repro.zookeeper import ZkConfig, check_spec, zk4394_mask

SCHEMA = Schema(("x", "y"))

SMALL = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


def counter_spec(max_x=4, y_bound=2, constraint=None):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
        ],
    )
    return Specification(
        "counter",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
        constraint=constraint,
    )


class TestFingerprinter:
    def test_deterministic_across_instances(self):
        state = State.make(SCHEMA, x=3, y=1)
        assert Fingerprinter().of_state(state) == Fingerprinter().of_state(state)

    def test_distinct_states_differ(self):
        a = Fingerprinter()
        fps = {
            a.of_state(State.make(SCHEMA, x=x, y=y))
            for x in range(10)
            for y in range(10)
        }
        assert len(fps) == 100

    def test_bool_int_equivalence_matches_state_equality(self):
        # State(True) == State(1) under tuple equality, so the
        # fingerprints must agree too.
        a = State(SCHEMA, (True, 0))
        b = State(SCHEMA, (1, 0))
        assert a == b
        fp = Fingerprinter()
        assert fp.of_state(a) == fp.of_state(b)

    def test_namedtuple_encodes_as_tuple(self):
        # Txn == plain tuple of its fields, mirrored by the encoding.
        txn = Txn(Zxid(1, 2), 3)
        assert canonical_bytes((txn,)) == canonical_bytes((((1, 2), 3),))

    def test_rec_distinct_from_items_tuple(self):
        rec = Rec(a=1)
        assert canonical_bytes((rec,)) != canonical_bytes(((("a", 1),),))

    def test_incremental_update_matches_full(self):
        fp = Fingerprinter()
        base = (1, (2, 3), "s")
        schema = Schema(("a", "b", "c"))
        full, digests = fp.of_values_with_digests(base)
        successor = (1, (2, 4), "s")
        incremental = fp.update(full, base, [(1, (2, 4))])
        assert incremental == fp.of_values(successor)
        assert len(digests) == len(schema)

    def test_unknown_type_raises(self):
        class Odd:
            pass

        with pytest.raises(FingerprintError):
            Fingerprinter().of_values((Odd(),))

    def test_narrow_width_forces_collisions(self):
        fp = Fingerprinter(bits=2)
        values = {fp.of_values((i,)) for i in range(64)}
        assert values <= {0, 1, 2, 3}

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Fingerprinter(bits=0)
        with pytest.raises(ValueError):
            Fingerprinter(bits=65)


class TestEngineBFS:
    def test_matches_bfs_checker_wrapper(self):
        direct = explore(counter_spec(), strategy="bfs")
        wrapped = BFSChecker(counter_spec()).run()
        assert direct.found_violation and wrapped.found_violation
        assert direct.first_violation.depth == wrapped.first_violation.depth == 6
        assert direct.states_explored == wrapped.states_explored

    def test_complete_space_counts_exactly(self):
        result = explore(counter_spec(max_x=2, y_bound=5), strategy="bfs")
        assert result.completed
        assert result.states_explored == 6

    def test_incremental_guard_analysis_is_sound(self):
        fast = ExplorationEngine(counter_spec(max_x=6, y_bound=3)).run()
        slow = ExplorationEngine(
            counter_spec(max_x=6, y_bound=3), incremental=False
        ).run()
        assert fast.states_explored == slow.states_explored
        assert fast.transitions == slow.transitions
        assert [v.invariant.ident for v in fast.violations] == [
            v.invariant.ident for v in slow.violations
        ]

    def test_undeclared_reads_are_never_pruned(self):
        # Regression: an action that omits its reads declaration (the
        # Action API default) has an *unknown* guard dependency set and
        # must be re-evaluated in every state -- it must not inherit a
        # known-disabled verdict from its parent.
        def inc_x(config, state):
            return {"x": state.x + 1} if state.x < 3 else None

        def inc_y(config, state):  # reads x and y, but declares nothing
            return {"y": state.y + 1} if state.y < state.x else None

        module = Module(
            "undeclared",
            [
                Action("IncX", inc_x, reads=["x"], writes=["x"]),
                Action("IncY", inc_y, writes=["y"]),
            ],
        )
        spec = Specification(
            "undeclared",
            SCHEMA,
            lambda cfg: [State.make(SCHEMA, x=0, y=0)],
            [module],
            [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= 99)],
            None,
        )
        fast = ExplorationEngine(spec).run()
        slow = ExplorationEngine(spec, incremental=False).run()
        assert fast.states_explored == slow.states_explored == 10
        assert fast.transitions == slow.transitions
        assert fast.completed and slow.completed

    def test_collision_handling_terminates_and_undercounts(self):
        # A 3-bit fingerprint space cannot hold the 28 distinct states:
        # colliding states are silently merged, never duplicated, and
        # the run still terminates.
        result = ExplorationEngine(
            counter_spec(max_x=6, y_bound=99),
            fingerprinter=Fingerprinter(bits=3),
        ).run()
        assert result.completed
        assert result.states_explored <= 8

    def test_full_width_matches_exact_dedup(self):
        exact = ExplorationEngine(counter_spec(max_x=6, y_bound=99)).run()
        assert exact.completed
        assert exact.states_explored == 28  # x in 0..6, y in 0..x

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(counter_spec(), strategy="bogus")
        assert set(STRATEGIES) == {"bfs", "dfs", "random", "portfolio"}


class TestEngineStrategies:
    def test_dfs_finds_violation(self):
        result = explore(counter_spec(), strategy="dfs", max_depth=20)
        assert result.found_violation
        assert result.first_violation.trace.final.y == 3

    def test_random_is_seed_deterministic(self):
        spec = counter_spec(y_bound=1)
        a = explore(spec, strategy="random", seed=5, max_states=500)
        b = explore(counter_spec(y_bound=1), strategy="random", seed=5, max_states=500)
        assert a.states_explored == b.states_explored
        assert [v.invariant.ident for v in a.violations] == [
            v.invariant.ident for v in b.violations
        ]

    def test_portfolio_finds_violation_in_process(self):
        result = explore(counter_spec(), strategy="portfolio", workers=1)
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"

    def test_portfolio_race_across_processes(self):
        result = explore(
            counter_spec(), strategy="portfolio", workers=3, max_time=60
        )
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"

    def test_portfolio_trace_replays(self):
        spec = counter_spec()
        result = explore(spec, strategy="portfolio", workers=2, max_time=60)
        trace = result.first_violation.trace
        assert spec.replay(trace.labels, trace.initial)[-1] == trace.final


class TestParallelDeterminism:
    def test_counter_spec_workers_agree(self):
        seq = ExplorationEngine(counter_spec(max_x=8, y_bound=99), workers=1).run()
        par = ExplorationEngine(counter_spec(max_x=8, y_bound=99), workers=2).run()
        assert seq.states_explored == par.states_explored
        assert seq.transitions == par.transitions
        assert seq.max_depth == par.max_depth
        assert seq.completed and par.completed

    def test_zookeeper_small_config_workers_agree(self):
        # V391 small config: the parallel engine must report exactly the
        # sequential violation set and state count.
        budget = dict(max_states=6_000, max_time=120)
        seq = check_spec("mSpec-3", SMALL, workers=1, **budget)
        par = check_spec("mSpec-3", SMALL, workers=2, **budget)
        assert seq.states_explored == par.states_explored
        assert seq.transitions == par.transitions
        assert [
            (v.invariant.full_name, v.depth) for v in seq.violations
        ] == [(v.invariant.full_name, v.depth) for v in par.violations]

    @pytest.mark.slow
    def test_zookeeper_violation_workers_agree(self):
        budget = dict(max_states=30_000, max_time=300)
        seq = check_spec("mSpec-3", SMALL, workers=1, **budget)
        par = check_spec("mSpec-3", SMALL, workers=4, **budget)
        assert seq.found_violation and par.found_violation
        assert seq.states_explored == par.states_explored
        assert [
            (v.invariant.full_name, v.depth) for v in seq.violations
        ] == [(v.invariant.full_name, v.depth) for v in par.violations]


class TestEngineOnZooKeeper:
    def test_engine_matches_legacy_checker(self):
        from repro.checker.legacy import LegacyBFSChecker
        from repro.zookeeper.specs import SELECTIONS, build_spec

        budget = dict(max_states=4_000, max_time=120)
        engine = check_spec("mSpec-2", SMALL, **budget)
        legacy = LegacyBFSChecker(
            build_spec("mSpec-2", SELECTIONS["mSpec-2"], SMALL),
            mask=zk4394_mask,
            **budget,
        ).run()
        # max_states semantics differ by at most the legacy overshoot
        # (it checks the budget at dequeue time, the engine at accept
        # time); everything else must agree exactly.
        assert abs(engine.states_explored - legacy.states_explored) <= 32
        assert engine.max_depth == legacy.max_depth
        assert [v.invariant.full_name for v in engine.violations] == [
            v.invariant.full_name for v in legacy.violations
        ]

    def test_invariant_memoization_is_sound_on_zk(self):
        fast = check_spec("mSpec-3", SMALL, max_states=4_000, max_time=120)
        slow = check_spec(
            "mSpec-3", SMALL, max_states=4_000, max_time=120, incremental=False
        )
        assert fast.states_explored == slow.states_explored
        assert fast.transitions == slow.transitions
        assert [v.invariant.full_name for v in fast.violations] == [
            v.invariant.full_name for v in slow.violations
        ]


class TestCompiledSpec:
    def test_evaluation_tiers_cover_all_instances(self):
        # Every instance must be resolved by exactly one evaluation
        # tier: a memoized outcome group, the direct (wide-closure)
        # sweep, or the ungrouped (undeclared-reads) sweep.
        spec = counter_spec()
        core = CompiledSpec(spec)
        covered = 0
        for _, members in core.outcome_groups:
            for idx in members:
                assert not (covered >> idx) & 1
                covered |= 1 << idx
        for idx in core.eager:
            assert not (covered >> idx) & 1
            covered |= 1 << idx
        assert covered == (1 << core.n_instances) - 1
        # Guard groups only reference declared-reads instances.
        for _, bits in core.guard_groups:
            assert bits & covered == bits

    def test_classify_reports_violations(self):
        spec = counter_spec(y_bound=0)
        core = CompiledSpec(spec)
        bad = State.make(SCHEMA, x=1, y=1)
        viols, masked, ok = core.classify(bad)
        assert viols and not masked and ok


class TestShrinkRoundTrip:
    def test_dfs_trace_shrinks_to_bfs_minimum(self):
        spec = counter_spec()
        dfs = explore(spec, strategy="dfs", max_depth=25)
        assert dfs.found_violation
        shrunk = shrink_trace(
            spec, dfs.first_violation.trace, violation_predicate(spec, "I-1")
        )
        assert len(shrunk) == 6  # the BFS minimum
        replayed = spec.replay(shrunk.labels, shrunk.initial)
        assert replayed == shrunk.states
        assert shrunk.final.y == 3

    def test_random_trace_shrinks_and_replays(self):
        spec = counter_spec()
        result = explore(spec, strategy="random", seed=11, max_states=5_000)
        assert result.found_violation
        shrunk = shrink_trace(
            spec,
            result.first_violation.trace,
            violation_predicate(spec, "I-1"),
        )
        assert len(shrunk) <= len(result.first_violation.trace)
        assert spec.replay(shrunk.labels, shrunk.initial)[-1] == shrunk.final


def random_spec(seed):
    """A random finite guarded-counter spec with *honest* dependency
    declarations: every action's guard reads only its declared reads,
    and every update value is computed from the written variable itself,
    the declared reads, and the declared update_sources -- exactly the
    contract :meth:`Action.dependency_closure` documents.  Roughly one
    action in five omits its reads declaration to exercise the
    never-memoized path."""
    rng = random.Random(seed)
    n_vars = rng.randint(3, 6)
    names = tuple(f"v{i}" for i in range(n_vars))
    schema = Schema(names)
    actions = []
    for a in range(rng.randint(3, 7)):
        guard_vars = tuple(rng.sample(names, rng.randint(1, min(3, n_vars))))
        write_vars = tuple(rng.sample(names, rng.randint(1, 2)))
        sources = {
            w: tuple(rng.sample(names, rng.randint(0, 2))) for w in write_vars
        }
        threshold = rng.randint(0, 3)
        modulus = rng.randint(2, 4)

        def fn(
            config,
            state,
            _g=guard_vars,
            _w=write_vars,
            _s=sources,
            _t=threshold,
            _m=modulus,
        ):
            if sum(state[v] for v in _g) % _m == _t % _m:
                return None
            return {
                w: (state[w] + 1 + sum(state[s] for s in _s[w])) % 5
                for w in _w
            }

        declare = rng.random() < 0.8
        actions.append(
            Action(
                f"A{a}",
                fn,
                reads=guard_vars if declare else (),
                writes=write_vars,
                update_sources=sources if declare else None,
            )
        )
    init = State.make(schema, **{v: 0 for v in names})
    bound = rng.randint(4, 8)
    invariant = Invariant(
        "I-R",
        "sum bounded",
        lambda cfg, s, _n=names, _b=bound: sum(s[v] for v in _n) <= _b,
        reads=frozenset(names) if rng.random() < 0.5 else frozenset(),
    )
    return Specification(
        f"rand-{seed}",
        schema,
        lambda cfg: [init],
        [Module("rand", actions)],
        [invariant],
        None,
    )


class TestIncrementalProperties:
    """Property tests over seeded random specs: the incremental paths
    must be bit-identical to full recomputation."""

    def test_incremental_fingerprints_match_full_on_random_walks(self):
        for seed in range(8):
            spec = random_spec(seed)
            inc = IncrementalFingerprinter(spec.schema)
            full = Fingerprinter()
            rng = random.Random(seed * 7 + 1)
            state = spec.initial_states()[0]
            fp = inc.of_state(state)
            assert fp == full.of_state(state)
            for _ in range(40):
                options = list(spec.successors(state))
                if not options:
                    break
                _, nxt = rng.choice(options)
                updates = {
                    name: new for name, (_, new) in state.diff(nxt).items()
                }
                stepped, delta = state.set_many(updates, fingerprinter=inc)
                assert stepped == nxt
                fp ^= delta
                assert fp == full.of_state(nxt), f"seed {seed}"
                state = nxt

    def test_expand_candidates_match_brute_force_on_random_walks(self):
        # Walk each random spec through the incremental expand chain
        # (inherited disabled bits, outcome memo warm across steps) and
        # compare every candidate list against a fresh non-incremental
        # core: same instances, same successor values, same
        # fingerprints.
        for seed in range(8):
            spec = random_spec(seed)
            core = CompiledSpec(spec)
            brute = CompiledSpec(spec, incremental=False)
            rng = random.Random(seed * 13 + 5)
            state = spec.initial_states()[0]
            fp, digests = core.fingerprinter.of_values_with_digests(state.values)
            known = 0
            for _ in range(30):
                _, fast = core.expand(
                    state, known, set(), fp, digests,
                    classify_candidates=False, dedupe=False,
                )
                _, slow = brute.expand(
                    state, 0, set(), fp, digests,
                    classify_candidates=False, dedupe=False,
                )
                assert [
                    (idx, nxt.values, cfp) for idx, nxt, cfp, *_ in fast
                ] == [
                    (idx, nxt.values, cfp) for idx, nxt, cfp, *_ in slow
                ], f"seed {seed}"
                if not fast:
                    break
                idx, nxt, fp, known, _, _, _, digests = rng.choice(fast)
                state = nxt

    def test_random_specs_explore_identically_with_and_without_memo(self):
        for seed in range(10):
            spec = random_spec(seed)
            fast = ExplorationEngine(spec, max_states=3_000).run()
            slow = ExplorationEngine(
                random_spec(seed), max_states=3_000, incremental=False
            ).run()
            assert fast.states_explored == slow.states_explored, f"seed {seed}"
            assert fast.transitions == slow.transitions, f"seed {seed}"
            assert fast.max_depth == slow.max_depth
            assert [v.invariant.ident for v in fast.violations] == [
                v.invariant.ident for v in slow.violations
            ]

    def test_random_specs_pass_debug_cross_checks(self):
        # debug=True re-evaluates every memoized/inherited outcome; an
        # unsound memo hit raises AssertionError.
        for seed in range(6):
            ExplorationEngine(random_spec(seed), max_states=1_500, debug=True).run()

    def test_zookeeper_specs_pass_debug_cross_checks(self):
        # The walkers and the campaign now ride the memoized expand
        # path, so the real specs' reads/writes/update_sources
        # declarations are load-bearing: sweep them under the debug
        # cross-check (this is what caught the NodeCrash and
        # FollowerSyncProcessorLogRequest undeclared update sources).
        for name in ("SysSpec", "mSpec-3"):
            check_spec(name, SMALL, max_states=2_500, max_time=60, debug=True)

    def test_debug_mode_catches_untruthful_declaration(self):
        # The update reads y but declares neither reads nor sources for
        # it: two states sharing the closure projection {x} but
        # differing in y make the memoized outcome wrong, and debug mode
        # must flag it.
        def lying(config, state):
            if state.x >= 3:
                return None
            return {"x": (state.x + 1 + state.y) % 5}

        def inc_y(config, state):
            return {"y": state.y + 1} if state.y < 3 else None

        module = Module(
            "lying",
            [
                Action("Lying", lying, reads=["x"], writes=["x"]),
                Action("IncY", inc_y, reads=["y"], writes=["y"]),
            ],
        )
        spec = Specification(
            "lying",
            SCHEMA,
            lambda cfg: [State.make(SCHEMA, x=0, y=0)],
            [module],
            [Invariant("I-1", "true", lambda cfg, s: True)],
            None,
        )
        with pytest.raises(AssertionError, match="Lying"):
            ExplorationEngine(spec, max_states=2_000, debug=True).run()

    def test_walker_matches_successors_enumeration(self):
        # RandomWalker now steps through CompiledSpec.expand; a matching
        # seed must choose exactly the label sequence the
        # Specification.successors enumeration implies (the conformance
        # campaign's finding fingerprints depend on this).
        for seed in range(6):
            spec = random_spec(seed)
            walked = RandomWalker(spec, seed=seed).walk(25)
            rng = random.Random(seed)
            state = rng.choice(spec.initial_states())
            labels = []
            for _ in range(25):
                if not spec.within_constraint(state):
                    break
                options = list(spec.successors(state))
                if not options:
                    break
                label, state = rng.choice(options)
                labels.append(label)
            assert walked.labels == labels
            assert walked.final == state

    def test_compiled_for_caches_on_spec(self):
        spec = counter_spec()
        assert compiled_for(spec) is compiled_for(spec)
        assert RandomWalker(spec)._core is compiled_for(spec)
        # Non-default configurations never share the cached core.
        assert compiled_for(spec, incremental=False) is not compiled_for(spec)


class TestCompiledKernelLane:
    """Differential fuzz: the compiled successor kernels must enumerate
    bitwise-identically to the interpreted path -- same states, same
    transitions, same violations -- on random honest specs and on the
    real ZooKeeper specs."""

    @staticmethod
    def _sig(result):
        return (
            result.states_explored,
            result.transitions,
            result.max_depth,
            sorted(
                (v.invariant.full_name, len(v.trace)) for v in result.violations
            ),
        )

    def test_fuzzed_random_specs_identical(self):
        for seed in range(10):
            sigs = {}
            for mode in ("on", "off"):
                engine = ExplorationEngine(
                    random_spec(seed), max_states=2_000, compile_mode=mode
                )
                sigs[mode] = self._sig(engine.run())
            assert sigs["on"] == sigs["off"], f"seed {seed}"

    @pytest.mark.parametrize("strategy", ["bfs", "dfs"])
    def test_zookeeper_compiled_identical(self, strategy):
        sigs = {}
        for mode in ("on", "off"):
            result = check_spec(
                "mSpec-3",
                SMALL,
                strategy=strategy,
                max_states=2_000,
                max_time=60,
                compile_mode=mode,
            )
            sigs[mode] = self._sig(result)
        assert sigs["on"] == sigs["off"]

    def test_zookeeper_kernel_passes_debug_cross_check(self):
        # --debug-deps under a live kernel re-evaluates every batch
        # against a fresh interpreted expansion.
        check_spec(
            "mSpec-3",
            SMALL,
            max_states=1_500,
            max_time=60,
            compile_mode="on",
            debug=True,
        )

    def test_untrusted_spec_falls_back_in_auto(self):
        # SysSpec carries lint findings on trust-critical rules, so auto
        # stays interpreted while forced compilation still emits.
        from repro.zookeeper.specs import SELECTIONS, build_spec

        spec = build_spec("SysSpec", SELECTIONS["SysSpec"], SMALL)
        assert compiled_for(spec, compile_mode="auto").kernel is None
        spec2 = build_spec("SysSpec", SELECTIONS["SysSpec"], SMALL)
        assert compiled_for(spec2, compile_mode="on").kernel is not None


class TestValuePickling:
    def test_rec_round_trips(self):
        rec = Rec(mtype="ACK", zxid=(1, 2))
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec and hash(clone) == hash(rec)

    def test_state_round_trips_and_compares_equal(self):
        state = State.make(SCHEMA, x=2, y=1)
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        assert clone.schema is state.schema  # schemas are interned
