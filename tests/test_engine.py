"""Tests for the unified exploration engine: fingerprinting, guard and
invariant memoization soundness, parallel determinism, portfolio racing,
and shrink round-trips on engine-produced traces."""

import pickle

import pytest

from repro.checker import (
    BFSChecker,
    ExplorationEngine,
    Fingerprinter,
    explore,
    shrink_trace,
    violation_predicate,
)
from repro.checker.engine import STRATEGIES, CompiledSpec
from repro.checker.fingerprint import FingerprintError, canonical_bytes
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State
from repro.tla.values import Rec, Txn, Zxid
from repro.zookeeper import ZkConfig, check_spec, zk4394_mask

SCHEMA = Schema(("x", "y"))

SMALL = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


def counter_spec(max_x=4, y_bound=2, constraint=None):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
        ],
    )
    return Specification(
        "counter",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
        constraint=constraint,
    )


class TestFingerprinter:
    def test_deterministic_across_instances(self):
        state = State.make(SCHEMA, x=3, y=1)
        assert Fingerprinter().of_state(state) == Fingerprinter().of_state(state)

    def test_distinct_states_differ(self):
        a = Fingerprinter()
        fps = {
            a.of_state(State.make(SCHEMA, x=x, y=y))
            for x in range(10)
            for y in range(10)
        }
        assert len(fps) == 100

    def test_bool_int_equivalence_matches_state_equality(self):
        # State(True) == State(1) under tuple equality, so the
        # fingerprints must agree too.
        a = State(SCHEMA, (True, 0))
        b = State(SCHEMA, (1, 0))
        assert a == b
        fp = Fingerprinter()
        assert fp.of_state(a) == fp.of_state(b)

    def test_namedtuple_encodes_as_tuple(self):
        # Txn == plain tuple of its fields, mirrored by the encoding.
        txn = Txn(Zxid(1, 2), 3)
        assert canonical_bytes((txn,)) == canonical_bytes((((1, 2), 3),))

    def test_rec_distinct_from_items_tuple(self):
        rec = Rec(a=1)
        assert canonical_bytes((rec,)) != canonical_bytes(((("a", 1),),))

    def test_incremental_update_matches_full(self):
        fp = Fingerprinter()
        base = (1, (2, 3), "s")
        schema = Schema(("a", "b", "c"))
        full, digests = fp.of_values_with_digests(base)
        successor = (1, (2, 4), "s")
        incremental = fp.update(full, base, [(1, (2, 4))])
        assert incremental == fp.of_values(successor)
        assert len(digests) == len(schema)

    def test_unknown_type_raises(self):
        class Odd:
            pass

        with pytest.raises(FingerprintError):
            Fingerprinter().of_values((Odd(),))

    def test_narrow_width_forces_collisions(self):
        fp = Fingerprinter(bits=2)
        values = {fp.of_values((i,)) for i in range(64)}
        assert values <= {0, 1, 2, 3}

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Fingerprinter(bits=0)
        with pytest.raises(ValueError):
            Fingerprinter(bits=65)


class TestEngineBFS:
    def test_matches_bfs_checker_wrapper(self):
        direct = explore(counter_spec(), strategy="bfs")
        wrapped = BFSChecker(counter_spec()).run()
        assert direct.found_violation and wrapped.found_violation
        assert direct.first_violation.depth == wrapped.first_violation.depth == 6
        assert direct.states_explored == wrapped.states_explored

    def test_complete_space_counts_exactly(self):
        result = explore(counter_spec(max_x=2, y_bound=5), strategy="bfs")
        assert result.completed
        assert result.states_explored == 6

    def test_incremental_guard_analysis_is_sound(self):
        fast = ExplorationEngine(counter_spec(max_x=6, y_bound=3)).run()
        slow = ExplorationEngine(
            counter_spec(max_x=6, y_bound=3), incremental=False
        ).run()
        assert fast.states_explored == slow.states_explored
        assert fast.transitions == slow.transitions
        assert [v.invariant.ident for v in fast.violations] == [
            v.invariant.ident for v in slow.violations
        ]

    def test_undeclared_reads_are_never_pruned(self):
        # Regression: an action that omits its reads declaration (the
        # Action API default) has an *unknown* guard dependency set and
        # must be re-evaluated in every state -- it must not inherit a
        # known-disabled verdict from its parent.
        def inc_x(config, state):
            return {"x": state.x + 1} if state.x < 3 else None

        def inc_y(config, state):  # reads x and y, but declares nothing
            return {"y": state.y + 1} if state.y < state.x else None

        module = Module(
            "undeclared",
            [
                Action("IncX", inc_x, reads=["x"], writes=["x"]),
                Action("IncY", inc_y, writes=["y"]),
            ],
        )
        spec = Specification(
            "undeclared",
            SCHEMA,
            lambda cfg: [State.make(SCHEMA, x=0, y=0)],
            [module],
            [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= 99)],
            None,
        )
        fast = ExplorationEngine(spec).run()
        slow = ExplorationEngine(spec, incremental=False).run()
        assert fast.states_explored == slow.states_explored == 10
        assert fast.transitions == slow.transitions
        assert fast.completed and slow.completed

    def test_collision_handling_terminates_and_undercounts(self):
        # A 3-bit fingerprint space cannot hold the 28 distinct states:
        # colliding states are silently merged, never duplicated, and
        # the run still terminates.
        result = ExplorationEngine(
            counter_spec(max_x=6, y_bound=99),
            fingerprinter=Fingerprinter(bits=3),
        ).run()
        assert result.completed
        assert result.states_explored <= 8

    def test_full_width_matches_exact_dedup(self):
        exact = ExplorationEngine(counter_spec(max_x=6, y_bound=99)).run()
        assert exact.completed
        assert exact.states_explored == 28  # x in 0..6, y in 0..x

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(counter_spec(), strategy="bogus")
        assert set(STRATEGIES) == {"bfs", "dfs", "random", "portfolio"}


class TestEngineStrategies:
    def test_dfs_finds_violation(self):
        result = explore(counter_spec(), strategy="dfs", max_depth=20)
        assert result.found_violation
        assert result.first_violation.trace.final.y == 3

    def test_random_is_seed_deterministic(self):
        spec = counter_spec(y_bound=1)
        a = explore(spec, strategy="random", seed=5, max_states=500)
        b = explore(counter_spec(y_bound=1), strategy="random", seed=5, max_states=500)
        assert a.states_explored == b.states_explored
        assert [v.invariant.ident for v in a.violations] == [
            v.invariant.ident for v in b.violations
        ]

    def test_portfolio_finds_violation_in_process(self):
        result = explore(counter_spec(), strategy="portfolio", workers=1)
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"

    def test_portfolio_race_across_processes(self):
        result = explore(
            counter_spec(), strategy="portfolio", workers=3, max_time=60
        )
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"

    def test_portfolio_trace_replays(self):
        spec = counter_spec()
        result = explore(spec, strategy="portfolio", workers=2, max_time=60)
        trace = result.first_violation.trace
        assert spec.replay(trace.labels, trace.initial)[-1] == trace.final


class TestParallelDeterminism:
    def test_counter_spec_workers_agree(self):
        seq = ExplorationEngine(counter_spec(max_x=8, y_bound=99), workers=1).run()
        par = ExplorationEngine(counter_spec(max_x=8, y_bound=99), workers=2).run()
        assert seq.states_explored == par.states_explored
        assert seq.transitions == par.transitions
        assert seq.max_depth == par.max_depth
        assert seq.completed and par.completed

    def test_zookeeper_small_config_workers_agree(self):
        # V391 small config: the parallel engine must report exactly the
        # sequential violation set and state count.
        budget = dict(max_states=6_000, max_time=120)
        seq = check_spec("mSpec-3", SMALL, workers=1, **budget)
        par = check_spec("mSpec-3", SMALL, workers=2, **budget)
        assert seq.states_explored == par.states_explored
        assert seq.transitions == par.transitions
        assert [
            (v.invariant.full_name, v.depth) for v in seq.violations
        ] == [(v.invariant.full_name, v.depth) for v in par.violations]

    @pytest.mark.slow
    def test_zookeeper_violation_workers_agree(self):
        budget = dict(max_states=30_000, max_time=300)
        seq = check_spec("mSpec-3", SMALL, workers=1, **budget)
        par = check_spec("mSpec-3", SMALL, workers=4, **budget)
        assert seq.found_violation and par.found_violation
        assert seq.states_explored == par.states_explored
        assert [
            (v.invariant.full_name, v.depth) for v in seq.violations
        ] == [(v.invariant.full_name, v.depth) for v in par.violations]


class TestEngineOnZooKeeper:
    def test_engine_matches_legacy_checker(self):
        from repro.checker.legacy import LegacyBFSChecker
        from repro.zookeeper.specs import SELECTIONS, build_spec

        budget = dict(max_states=4_000, max_time=120)
        engine = check_spec("mSpec-2", SMALL, **budget)
        legacy = LegacyBFSChecker(
            build_spec("mSpec-2", SELECTIONS["mSpec-2"], SMALL),
            mask=zk4394_mask,
            **budget,
        ).run()
        # max_states semantics differ by at most the legacy overshoot
        # (it checks the budget at dequeue time, the engine at accept
        # time); everything else must agree exactly.
        assert abs(engine.states_explored - legacy.states_explored) <= 32
        assert engine.max_depth == legacy.max_depth
        assert [v.invariant.full_name for v in engine.violations] == [
            v.invariant.full_name for v in legacy.violations
        ]

    def test_invariant_memoization_is_sound_on_zk(self):
        fast = check_spec("mSpec-3", SMALL, max_states=4_000, max_time=120)
        slow = check_spec(
            "mSpec-3", SMALL, max_states=4_000, max_time=120, incremental=False
        )
        assert fast.states_explored == slow.states_explored
        assert fast.transitions == slow.transitions
        assert [v.invariant.full_name for v in fast.violations] == [
            v.invariant.full_name for v in slow.violations
        ]


class TestCompiledSpec:
    def test_guard_groups_cover_all_instances(self):
        spec = counter_spec()
        core = CompiledSpec(spec)
        grouped = 0
        for _, bits in core.guard_groups:
            grouped |= bits
        for idx in core.ungrouped:
            grouped |= 1 << idx
        assert grouped == (1 << core.n_instances) - 1

    def test_classify_reports_violations(self):
        spec = counter_spec(y_bound=0)
        core = CompiledSpec(spec)
        bad = State.make(SCHEMA, x=1, y=1)
        viols, masked, ok = core.classify(bad)
        assert viols and not masked and ok


class TestShrinkRoundTrip:
    def test_dfs_trace_shrinks_to_bfs_minimum(self):
        spec = counter_spec()
        dfs = explore(spec, strategy="dfs", max_depth=25)
        assert dfs.found_violation
        shrunk = shrink_trace(
            spec, dfs.first_violation.trace, violation_predicate(spec, "I-1")
        )
        assert len(shrunk) == 6  # the BFS minimum
        replayed = spec.replay(shrunk.labels, shrunk.initial)
        assert replayed == shrunk.states
        assert shrunk.final.y == 3

    def test_random_trace_shrinks_and_replays(self):
        spec = counter_spec()
        result = explore(spec, strategy="random", seed=11, max_states=5_000)
        assert result.found_violation
        shrunk = shrink_trace(
            spec,
            result.first_violation.trace,
            violation_predicate(spec, "I-1"),
        )
        assert len(shrunk) <= len(result.first_violation.trace)
        assert spec.replay(shrunk.labels, shrunk.initial)[-1] == shrunk.final


class TestValuePickling:
    def test_rec_round_trips(self):
        rec = Rec(mtype="ACK", zxid=(1, 2))
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec and hash(clone) == hash(rec)

    def test_state_round_trips_and_compares_equal(self):
        state = State.make(SCHEMA, x=2, y=1)
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        assert clone.schema is state.schema  # schemas are interned
