"""Tests for campaign repro minimization and adaptive scheduling: the
oracle-generalized shrinker, witness rebuild/replay round-trips, the
adaptive round allocator, the coordinator's compared-variable validation
and the spec cache's single-flight composition."""

import threading
import time

import pytest

from repro.checker import parallel
from repro.checker.shrink import shrink_trace, shrink_trace_oracle
from repro.checker.trace import Trace
from repro.remix import spec_cache
from repro.remix.campaign import (
    CampaignReport,
    CampaignRequest,
    ConformanceCampaign,
    allocate_round,
    campaign_config,
    trace_findings,
)
from repro.remix.coordinator import Coordinator
from repro.remix.mapping import mapping_for
from repro.remix.minimize import (
    ConformanceOracle,
    ValidationOracle,
    rebuild_validation_witness,
    rebuild_witness,
    replay_min_trace,
    shrink_finding,
    unreplayable_min_traces,
)
from repro.impl import Ensemble
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State
from repro.zookeeper import V391, make_spec
from repro.zookeeper.scenarios import Scenario
from repro.zookeeper.specs import SELECTIONS

CONFIG = campaign_config()

#: A tiny single-grain campaign that reproduces ZK-4394's NPE through
#: FollowerProcessCOMMITInSync on the mSpec-1/sync lanes.  (The walk
#: depth is tuned to the campaign config: composing the message-fault
#: actions reshuffled the random walks, and 16 steps no longer reach
#: the NPE at these seeds.)
NPE_CAMPAIGN = dict(
    grains=("mSpec-1",),
    scenarios=("sync",),
    faults=("none", "crash-follower", "partition"),
    seeds=3,
    traces=3,
    max_steps=20,
    seed=7,
)


@pytest.fixture(scope="module")
def npe_report():
    return ConformanceCampaign(
        CampaignRequest(**NPE_CAMPAIGN, shrink=True)
    ).run()


# --------------------------------------------------------- shrinker core


SCHEMA = Schema(("x", "y"))


def counter_spec(max_x=4, y_bound=2):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
        ],
    )
    return Specification(
        "counter",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
    )


def walk_to(spec, predicate, extra_steps=0):
    """A trace whose first predicate-satisfying state sits ``extra_steps``
    before the end (mid-trace when extra_steps > 0, with the final state
    no longer satisfying the predicate)."""
    from repro.checker import RandomWalker

    walker = RandomWalker(spec, seed=3)
    for _ in range(500):
        trace = walker.walk(max_steps=40)
        hits = [i for i, s in enumerate(trace.states) if predicate(s)]
        if not hits:
            continue
        cut = hits[0] + extra_steps
        if cut >= len(trace.states):
            continue
        if extra_steps and predicate(trace.states[cut]):
            continue
        return Trace(
            states=trace.states[: cut + 1], labels=trace.labels[:cut]
        )
    raise AssertionError("no trace reached the target state")


class TestTruncatedAt:
    def test_truncates_at_first_match(self):
        spec = counter_spec(max_x=8, y_bound=99)
        trace = walk_to(spec, lambda s: s.y == 3, extra_steps=4)
        truncated = trace.truncated_at(lambda s: s.y == 3)
        assert len(truncated) == len(trace) - 4
        assert truncated.final.y == 3
        assert not any(s.y == 3 for s in truncated.states[:-1])

    def test_no_match_returns_self(self):
        spec = counter_spec()
        trace = walk_to(spec, lambda s: s.y > 2)
        assert trace.truncated_at(lambda s: s.y > 99) is trace


class TestShrinkMidTraceViolation:
    def test_mid_trace_violation_shrinks(self):
        """Engine/DFS traces are not stop_when-truncated: the violating
        state can sit mid-trace.  This used to raise ValueError."""
        spec = counter_spec(max_x=8, y_bound=99)
        predicate = lambda s: s.y == 3  # noqa: E731
        trace = walk_to(spec, predicate, extra_steps=5)
        assert not predicate(trace.final)  # genuinely mid-trace
        shrunk = shrink_trace(spec, trace, predicate)
        assert len(shrunk) == 6  # the true minimum
        assert predicate(shrunk.final)

    def test_never_failing_trace_still_rejected(self):
        spec = counter_spec()
        init = spec.initial_states()[0]
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_trace(
                spec, Trace(states=[init], labels=[]), lambda s: s.y > 2
            )

    def test_oracle_shrink_accepts_arbitrary_trace_predicates(self):
        """The oracle sees whole replayed traces, not just final states."""
        spec = counter_spec()
        trace = walk_to(spec, lambda s: s.y > 2)

        def oracle(candidate):
            return candidate.final.y == 3 and len(candidate) >= 6

        shrunk = shrink_trace_oracle(spec, trace, oracle)
        assert len(shrunk) == 6
        assert shrunk.final.y == 3


# -------------------------------------------------- campaign minimization


class TestCampaignShrink:
    def test_npe_fingerprints_minimized(self, npe_report):
        npe = [
            f for f in npe_report.findings if f.get("bug_id") == "ZK-4394"
        ]
        assert npe, "campaign must reproduce the ZK-4394 NPE"
        for finding in npe:
            min_trace = finding["min_trace"]
            assert min_trace["status"] == "ok"
            # strictly shorter than the raw witness for the NPE
            assert min_trace["steps"] < finding["witness"]["steps"]

    def test_every_finding_never_longer_and_replayable(self, npe_report):
        assert npe_report.findings
        for finding in npe_report.findings:
            min_trace = finding["min_trace"]
            assert min_trace["status"] == "ok"
            assert min_trace["steps"] <= finding["witness"]["steps"]
            assert replay_min_trace(finding, CONFIG)
        # no config passed: reconstructed from the report's meta block
        assert unreplayable_min_traces(npe_report.to_json()) == []

    def test_witness_rebuild_reproduces_fingerprint(self, npe_report):
        finding = npe_report.findings[0]
        trace = rebuild_witness(finding["grain"], finding["witness"], CONFIG)
        assert len(trace) == finding["witness"]["steps"]
        oracle = ConformanceOracle(
            finding["grain"], finding["fingerprint"], CONFIG
        )
        assert oracle(trace)
        # a different fingerprint is not accepted by the same trace
        other = ConformanceOracle(finding["grain"], "deadbeef", CONFIG)
        assert not other(trace)

    def test_config_round_trips_through_report_meta(self, npe_report):
        import json

        from repro.remix.campaign import config_from_meta
        from repro.zookeeper.config import ZkConfig

        meta = json.loads(json.dumps(npe_report.to_json()))["campaign"]
        assert config_from_meta(meta) == CONFIG
        custom = ZkConfig(
            n_servers=3, max_txns=2, max_crashes=1, max_partitions=0,
            max_epoch=3,
        ).with_variant(CONFIG.variant.with_(fix_follower_shutdown=True))
        report = ConformanceCampaign(
            CampaignRequest(
                grains=("mSpec-1",), scenarios=("election",),
                faults=("none",), traces=1, max_steps=2, config=custom,
            )
        ).run()
        assert config_from_meta(report.to_json()["campaign"]) == custom
        # /1-era meta without a config block falls back to the default
        assert config_from_meta({}) == CONFIG

    def test_witness_records_roles(self, npe_report):
        witness = npe_report.findings[0]["witness"]
        assert witness["leader"] == CONFIG.n_servers - 1
        assert witness["follower"] == 0

    def test_label_args_round_trip_preserves_types(self):
        import json

        from repro.remix.minimize import _args_from_json, _args_to_json

        for value in (3, (0, 2), ((1, 2), (3,)), frozenset({(0, 1), (2, 3)})):
            encoded = json.loads(json.dumps(_args_to_json(value)))
            assert _args_from_json(encoded) == value
            assert type(_args_from_json(encoded)) is type(value)

    def test_repros_keep_json_stdout_pure(self, tmp_path, capsys):
        import json

        from repro.cli import main

        code = main(
            [
                "campaign", "--grains", "mSpec-1", "--scenarios", "election",
                "--faults", "none", "--traces", "1", "--steps", "4",
                "--shrink", "--json", "-",
                "--repros", str(tmp_path / "repros"),
            ]
        )
        assert code == 0
        json.loads(capsys.readouterr().out)  # stdout is pure JSON

    def test_shrink_finding_without_witness(self):
        payload = shrink_finding(
            {"fingerprint": "aa", "grain": "mSpec-1"}, CONFIG
        )
        assert payload == {"status": "no_witness"}

    @pytest.mark.skipif(not parallel.available(), reason="needs fork")
    def test_shrink_deterministic_across_workers(self, npe_report):
        parallel_report = ConformanceCampaign(
            CampaignRequest(**NPE_CAMPAIGN, shrink=True, workers=2)
        ).run()
        seq, par = npe_report.to_json(), parallel_report.to_json()
        for key in ("cells", "findings", "totals"):
            assert seq[key] == par[key], key

    def test_min_traces_counted_in_totals(self, npe_report):
        totals = npe_report.totals
        assert totals["min_traces"] == totals["distinct_findings"] > 0
        assert "minimized" in npe_report.summary()

    def test_schema_v1_reports_still_load(self):
        report = CampaignReport.from_json(
            {
                "schema": "repro.campaign/1",
                "campaign": {},
                "cells": [],
                "findings": [{"fingerprint": "aa", "kind": "impl_bug"}],
            }
        )
        assert report.fingerprints("impl_bug") == ["aa"]

    def test_schema_v2_reports_still_load(self):
        report = CampaignReport.from_json(
            {
                "schema": "repro.campaign/2",
                "campaign": {},
                "cells": [],
                "findings": [{"fingerprint": "bb", "kind": "impl_bug"}],
            }
        )
        assert report.fingerprints("impl_bug") == ["bb"]


# --------------------------------------------- bottom-up minimization


class TestValidationShrink:
    """A fixed-seed bottom-up cell reproduces a known model/impl
    divergence (the simulator allows faults on nodes/pairs the model's
    guards forbid) and its witness shrinks to a replayable min_trace."""

    @pytest.fixture(scope="class")
    def validation_finding(self):
        from repro.remix.campaign import CampaignJob, run_validation_cell

        job = CampaignJob(
            0, "mSpec-1", "election", "crash-follower", 0, 2, 12,
            direction="bottomup",
        )
        cell = run_validation_cell(job, CONFIG)
        assert cell["findings"], "fixed-seed cell must reproduce"
        finding = dict(cell["findings"][0], count=1)
        return finding

    def test_witness_rebuild_reproduces_fingerprint(self, validation_finding):
        labels = rebuild_validation_witness(
            "mSpec-1", validation_finding["witness"], CONFIG
        )
        assert len(labels) == validation_finding["witness"]["steps"]
        oracle = ValidationOracle(
            "mSpec-1", validation_finding["fingerprint"], CONFIG
        )
        assert oracle(labels)
        assert not ValidationOracle("mSpec-1", "deadbeef", CONFIG)(labels)

    def test_shrinks_and_replays(self, validation_finding):
        payload = shrink_finding(validation_finding, CONFIG)
        assert payload["status"] == "ok"
        assert payload["steps"] <= payload["witness_steps"]
        # a model-disabled divergence needs only the enabling fault plus
        # the forbidden step -- the shrunk repro is tiny
        assert payload["steps"] <= 4
        finding = dict(validation_finding, min_trace=payload)
        assert replay_min_trace(finding, CONFIG)

    def test_campaign_shrink_handles_both_directions(self):
        report = ConformanceCampaign(
            CampaignRequest(
                grains=("mSpec-1",),
                scenarios=("election", "broadcast"),
                faults=("none", "crash-follower"),
                traces=1,
                max_steps=5,
                seed=7,
                directions=("topdown", "bottomup"),
                shrink=True,
            )
        ).run()
        bottomup = [
            f for f in report.findings if f["direction"] == "bottomup"
        ]
        assert bottomup
        for finding in report.findings:
            assert finding["min_trace"]["status"] == "ok"
            assert replay_min_trace(finding, CONFIG)
        assert unreplayable_min_traces(report.to_json()) == []


# ------------------------------------------------------ adaptive matrix


class TestAllocateRound:
    def test_no_yield_is_uniform(self):
        assert allocate_round(4, [0, 0, 0, 0], [0, 0, 0, 0]) == [0, 1, 2, 3]

    def test_partial_round_prefers_least_sampled(self):
        assert allocate_round(2, [0, 0, 0, 0], [2, 1, 1, 2]) == [1, 2]

    def test_yield_attracts_exploit_slots(self):
        # 2 exploit slots (6 // 3) both go to the only yielding cell;
        # the 4 explore slots spread least-sampled-first.
        assert allocate_round(6, [0, 4, 0], [1, 1, 1]) == [0, 0, 1, 1, 2, 2]

    def test_total_always_matches_round_size(self):
        for size in (1, 3, 5, 8):
            assert len(allocate_round(size, [3, 0, 1], [5, 0, 2])) == size


class TestAdaptiveCampaign:
    KW = dict(
        grains=("mSpec-1", "mSpec-2"),
        scenarios=("sync", "commit"),
        faults=("none", "crash-follower", "partition"),
        seeds=3,
        traces=2,
        max_steps=14,
        seed=7,
    )

    def test_no_fewer_fingerprints_than_uniform_same_budget(self):
        uniform = ConformanceCampaign(CampaignRequest(**self.KW)).run().totals
        adaptive = (
            ConformanceCampaign(CampaignRequest(**self.KW, adaptive=True))
            .run()
            .totals
        )
        assert adaptive["cells"] == uniform["cells"]
        assert (
            adaptive["distinct_findings"] >= uniform["distinct_findings"]
        )

    @pytest.mark.skipif(not parallel.available(), reason="needs fork")
    def test_adaptive_deterministic_across_workers(self):
        seq = (
            ConformanceCampaign(CampaignRequest(**self.KW, adaptive=True))
            .run()
            .to_json()
        )
        par = (
            ConformanceCampaign(
                CampaignRequest(**self.KW, adaptive=True, workers=2)
            )
            .run()
            .to_json()
        )
        for key in ("cells", "findings", "totals"):
            assert seq[key] == par[key], key

    def test_adaptive_seeds_one_equals_uniform(self):
        kw = dict(self.KW, seeds=1)
        uniform = ConformanceCampaign(CampaignRequest(**kw)).run().to_json()
        adaptive = (
            ConformanceCampaign(CampaignRequest(**kw, adaptive=True))
            .run()
            .to_json()
        )
        assert uniform["cells"] == adaptive["cells"]
        assert uniform["findings"] == adaptive["findings"]

    def test_adaptive_budget_exhaustion_stops_rounds(self):
        report = ConformanceCampaign(
            CampaignRequest(**self.KW, adaptive=True, budget=1e-9)
        ).run()
        assert report.totals["cells"] == 0
        assert report.findings == []


# ------------------------------------- coordinator variable validation


class TestCompareValidation:
    def electing_trace(self):
        spec = make_spec("mSpec-1", CONFIG)
        return Scenario(spec).elect(2, (0, 1, 2)).trace()

    def coordinator(self, variables):
        return Coordinator(
            mapping_for(SELECTIONS["mSpec-1"]),
            lambda: Ensemble(3, V391),
            compared_variables=variables,
        )

    def test_typo_reported_not_silently_skipped(self):
        coordinator = self.coordinator(("state", "historyy"))
        result = coordinator.replay(self.electing_trace())
        kinds = [d.kind for d in result.discrepancies]
        assert "unknown_variable" in kinds
        bad = next(
            d for d in result.discrepancies if d.kind == "unknown_variable"
        )
        assert bad.variable == "historyy"
        assert "absent from the implementation snapshot" in str(bad)

    def test_known_variables_still_compared_when_not_stopping(self):
        coordinator = self.coordinator(("state", "historyy"))
        result = coordinator.replay(
            self.electing_trace(), stop_on_discrepancy=False
        )
        assert result.steps_executed == 1  # replay continued past the report
        assert [d.kind for d in result.discrepancies] == ["unknown_variable"]

    def test_valid_variables_report_nothing(self):
        coordinator = self.coordinator(("state", "history"))
        result = coordinator.replay(self.electing_trace())
        assert result.clean

    def test_unknown_variable_flows_into_findings(self):
        coordinator = self.coordinator(("historyy",))
        trace = self.electing_trace()
        result = coordinator.replay(trace, stop_on_discrepancy=False)
        findings = trace_findings(result, trace, "mSpec-1")
        assert findings and findings[0]["kind"] == "unknown_variable"
        assert findings[0]["variable"] == "historyy"


# --------------------------------------------- spec cache single-flight


class TestSingleFlight:
    def test_concurrent_first_calls_compose_once(self, monkeypatch):
        import repro.zookeeper.specs as specs_module

        spec_cache.clear()
        real_make_spec = specs_module.make_spec
        calls = []

        def slow_make_spec(name, config):
            calls.append(name)
            time.sleep(0.05)  # widen the race window
            return real_make_spec(name, config)

        monkeypatch.setattr(specs_module, "make_spec", slow_make_spec)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    spec_cache.cached_spec("mSpec-1", CONFIG)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1  # exactly one composition
        assert len({id(spec) for spec in results}) == 1
        stats = spec_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 3
        spec_cache.clear()

    def test_failed_composition_retries(self, monkeypatch):
        import repro.zookeeper.specs as specs_module

        spec_cache.clear()
        real_make_spec = specs_module.make_spec
        attempts = []

        def flaky_make_spec(name, config):
            attempts.append(name)
            if len(attempts) == 1:
                raise RuntimeError("boom")
            return real_make_spec(name, config)

        monkeypatch.setattr(specs_module, "make_spec", flaky_make_spec)
        with pytest.raises(RuntimeError, match="boom"):
            spec_cache.cached_spec("mSpec-1", CONFIG)
        spec = spec_cache.cached_spec("mSpec-1", CONFIG)  # key not poisoned
        assert spec is spec_cache.cached_spec("mSpec-1", CONFIG)
        spec_cache.clear()

    def test_mapping_single_flight_returns_same_object(self):
        spec_cache.clear()
        first = spec_cache.cached_mapping("mSpec-2")
        assert first is spec_cache.cached_mapping("mSpec-2")
        spec_cache.clear()
