"""Tests for composition and interaction preservation (Appendix B).

Includes a dynamic validation of the Interaction Preservation Theorem on
a small two-module specification: coarsening the environment module while
preserving interactions leaves the target module's projected traces
unchanged, while a coarsening that breaks the rules changes them.
"""

import pytest

from repro.tla.action import Action
from repro.tla.composition import (
    CompositionError,
    check_interaction_preservation,
    compose,
    traces_equivalent_for,
)
from repro.tla.module import Module
from repro.tla.spec import Specification
from repro.tla.state import Schema, State

# A toy system: an "env" module increments a shared counter through an
# internal staging variable; a "target" module observes the shared
# counter.  Coarsening env merges the two-step increment into one action.
SCHEMA = Schema(("shared", "staging", "observed"))


def init(config):
    return [State.make(SCHEMA, shared=0, staging=0, observed=0)]


def env_stage(config, state):
    if state.staging != 0 or state.shared >= config["max"]:
        return None
    return {"staging": state.shared + 1}


def env_publish(config, state):
    if state.staging == 0:
        return None
    return {"shared": state.staging, "staging": 0}


def env_coarse(config, state):
    if state.shared >= config["max"]:
        return None
    return {"shared": state.shared + 1}


def env_coarse_bad(config, state):
    """A coarsening that violates interaction preservation: it skips a
    value of the shared counter."""
    if state.shared >= config["max"]:
        return None
    return {"shared": state.shared + 2}


def observe(config, state):
    if state.observed == state.shared:
        return None
    return {"observed": state.shared}


def fine_env():
    return Module(
        "Env",
        [
            Action("Stage", env_stage, reads=["staging", "shared"],
                   writes=["staging"], update_sources={"staging": ["shared"]}),
            Action("Publish", env_publish, reads=["staging"],
                   writes=["shared", "staging"],
                   update_sources={"shared": ["staging"]}),
        ],
    )


def coarse_env(fn=env_coarse):
    return Module(
        "Env",
        [Action("Inc", fn, reads=["shared"], writes=["shared"])],
    )


def target():
    return Module(
        "Target",
        [Action("Observe", observe, reads=["observed", "shared"],
                writes=["observed"], update_sources={"observed": ["shared"]})],
    )


def spec_with(env_module, name="toy"):
    return Specification(
        name,
        SCHEMA,
        init,
        [env_module, target()],
        [],
        {"max": 2},
    )


class TestStaticCheck:
    def test_good_coarsening_passes(self):
        preserved = check_interaction_preservation(
            [fine_env(), target()], fine_env(), coarse_env(), target()
        )
        assert "shared" in preserved

    def test_dropping_preserved_write_rejected(self):
        dropped = Module(
            "Env", [Action("Noop", lambda c, s: None, reads=["staging"])]
        )
        with pytest.raises(CompositionError, match="drops updates"):
            check_interaction_preservation(
                [fine_env(), target()], fine_env(), dropped, target()
            )

    def test_new_interfering_write_rejected(self):
        interfering = Module(
            "Env",
            [
                Action(
                    "Evil",
                    lambda c, s: {"shared": 0, "observed": 99},
                    reads=["shared"],
                    writes=["shared", "observed"],
                )
            ],
        )
        with pytest.raises(CompositionError, match="introduces writes"):
            check_interaction_preservation(
                [fine_env(), target()], fine_env(), interfering, target()
            )


class TestTheoremDynamically:
    def test_interaction_preserving_coarsening_is_trace_equivalent(self):
        full = spec_with(fine_env(), "full")
        mixed = spec_with(coarse_env(), "mixed")
        assert traces_equivalent_for(full, mixed, target(), max_depth=6)

    def test_violating_coarsening_is_not_trace_equivalent(self):
        full = spec_with(fine_env(), "full")
        broken = spec_with(coarse_env(env_coarse_bad), "broken")
        assert not traces_equivalent_for(full, broken, target(), max_depth=6)


class TestCompose:
    def test_duplicate_action_names_rejected(self):
        with pytest.raises(CompositionError, match="two composed modules"):
            compose(
                "dup",
                SCHEMA,
                init,
                [coarse_env(), coarse_env()],
                [],
                {"max": 2},
            )

    def test_compose_builds_specification(self):
        spec = compose(
            "ok", SCHEMA, init, [fine_env(), target()], [], {"max": 2}
        )
        assert spec.name == "ok"
        assert [m.name for m in spec.modules] == ["Env", "Target"]


class TestZooKeeperCoarsening:
    """The paper's actual coarsening (Figure 5): the eight Election +
    Discovery actions collapse into ElectionAndDiscovery, preserving the
    interactions the Synchronization module depends on."""

    def test_coarse_election_is_interaction_preserving(self):
        from repro.tla.module import Module
        from repro.zookeeper.broadcast import broadcast_baseline_module
        from repro.zookeeper.coarse import coarse_election_module
        from repro.zookeeper.config import ZkConfig
        from repro.zookeeper.discovery import discovery_module
        from repro.zookeeper.election import election_module
        from repro.zookeeper.faults import faults_module
        from repro.zookeeper.sync_baseline import sync_baseline_module

        config = ZkConfig()
        fine = Module(
            "ElectionAndDiscovery",
            election_module(config).actions + discovery_module(config).actions,
        )
        sync = sync_baseline_module(config)
        all_modules = [
            fine,
            sync,
            broadcast_baseline_module(config),
            faults_module(config),
        ]
        preserved = check_interaction_preservation(
            all_modules, fine, coarse_election_module(config), sync
        )
        # the interaction carriers of Figure 5 survive the coarsening
        for variable in ("state", "zab_state", "ackepoch_recv", "accepted_epoch"):
            assert variable in preserved
        # FLE internals are abstracted away (they are not preserved and
        # the coarse module does not write them)
        assert "current_vote" not in coarse_election_module(config).writes()
