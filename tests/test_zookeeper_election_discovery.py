"""Scripted tests for the baseline (fine-grained) Election and Discovery
modules -- the eight actions that the coarse ElectionAndDiscovery action
summarizes (Figure 5a)."""

import pytest

from conftest import txn, zk_state
from repro.zookeeper import constants as C
from repro.zookeeper.specs import SELECTIONS, build_spec
from repro.zookeeper.config import ZkConfig
from test_zookeeper_sync import disabled, run


@pytest.fixture
def spec():
    config = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)
    return build_spec("SysSpec", SELECTIONS["SysSpec"], config)


def run_full_election(spec, state):
    """Drive FLE to completion: server 2 (max sid) wins."""
    for i in (0, 1, 2):
        state = run(spec, state, "FLEBroadcastNotmsg", i=i)
    # everyone receives everyone's votes; all adopt the vote for 2
    for i in (0, 1, 2):
        for j in (0, 1, 2):
            if i != j:
                state = run(spec, state, "FLEReceiveNotmsg", pair=(i, j))
    # re-broadcast adopted votes so supporters are counted
    for i in (0, 1):
        state = run(spec, state, "FLEBroadcastNotmsg", i=i)
    for i in (0, 1, 2):
        for j in (0, 1):
            if i != j:
                state = run(spec, state, "FLEReceiveNotmsg", pair=(i, j))
    for i in (2, 0, 1):
        state = run(spec, state, "FLEDecide", i=i)
    return state


class TestFLE:
    def test_full_election_converges_on_max_sid(self, spec):
        state = run_full_election(spec, zk_state(spec.config))
        assert state["state"][2] == C.LEADING
        assert state["state"][0] == C.FOLLOWING
        assert state["my_leader"] == (2, 2, 2)
        assert all(z == C.DISCOVERY for z in state["zab_state"])

    def test_vote_adoption_resets_broadcast_flag(self, spec):
        state = zk_state(spec.config)
        state = run(spec, state, "FLEBroadcastNotmsg", i=2)
        state = run(spec, state, "FLEReceiveNotmsg", pair=(0, 2))
        # 0 adopted 2's vote and must re-broadcast it
        assert state["current_vote"][0].sid == 2
        assert not state["vote_sent"][0]

    def test_weaker_vote_not_adopted(self, spec):
        state = zk_state(spec.config)
        state = run(spec, state, "FLEBroadcastNotmsg", i=0)
        state = run(spec, state, "FLEReceiveNotmsg", pair=(2, 0))
        assert state["current_vote"][2].sid == 2

    def test_decide_needs_quorum(self, spec):
        state = zk_state(spec.config)
        state = run(spec, state, "FLEBroadcastNotmsg", i=2)
        assert disabled(spec, state, "FLEDecide", i=2)

    def test_higher_epoch_vote_wins(self, spec):
        state = zk_state(
            spec.config,
            current_epoch=(1, 0, 0),
            current_vote=(
                __import__("repro.zookeeper.schema", fromlist=["empty_vote"]).empty_vote(0).replace(epoch=1),
                __import__("repro.zookeeper.schema", fromlist=["empty_vote"]).empty_vote(1),
                __import__("repro.zookeeper.schema", fromlist=["empty_vote"]).empty_vote(2),
            ),
        )
        state = run(spec, state, "FLEBroadcastNotmsg", i=0)
        state = run(spec, state, "FLEReceiveNotmsg", pair=(2, 0))
        assert state["current_vote"][2].sid == 0

    def test_non_looking_node_replies_with_leader_vote(self, spec):
        state = run_full_election(spec, zk_state(spec.config))
        # a late notification to the leader gets answered
        state = state.set(
            state=tuple(
                C.LOOKING if s == 0 else state["state"][s] for s in range(3)
            ),
            vote_sent=(False, True, True),
        )
        state = run(spec, state, "FLEBroadcastNotmsg", i=0)
        state = run(spec, state, "FLEReplyNotmsg", pair=(2, 0))
        reply = state["msgs"][2][0][-1]
        assert reply.mtype == C.NOTIFICATION and reply.vote.sid == 2


class TestDiscovery:
    def after_election(self, spec):
        return run_full_election(spec, zk_state(spec.config))

    def test_followerinfo_leaderinfo_ackepoch_round(self, spec):
        state = self.after_election(spec)
        state = run(
            spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(0, 2)
        )
        state = run(
            spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(1, 2)
        )
        state = run(spec, state, "LeaderProcessFOLLOWERINFO", pair=(2, 0))
        # quorum of FOLLOWERINFO ({0} + leader): epoch proposed
        assert state["accepted_epoch"][2] == 1
        leaderinfo = state["msgs"][2][0][0]
        assert leaderinfo.mtype == C.LEADERINFO and leaderinfo.epoch == 1
        state = run(spec, state, "FollowerProcessLEADERINFO", pair=(0, 2))
        assert state["accepted_epoch"][0] == 1
        assert state["zab_state"][0] == C.SYNCHRONIZATION
        state = run(spec, state, "LeaderProcessACKEPOCH", pair=(2, 0))
        assert state["zab_state"][2] == C.SYNCHRONIZATION
        assert state["current_epoch"][2] == 1
        assert any(e[0] == 0 for e in state["ackepoch_recv"][2])

    def test_late_joiner_gets_leaderinfo_directly(self, spec):
        state = self.after_election(spec)
        for f in (0, 1):
            state = run(
                spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(f, 2)
            )
        state = run(spec, state, "LeaderProcessFOLLOWERINFO", pair=(2, 0))
        # the second FOLLOWERINFO arrives after the epoch was proposed
        state = run(spec, state, "LeaderProcessFOLLOWERINFO", pair=(2, 1))
        leaderinfo = state["msgs"][2][1][-1]
        assert leaderinfo.mtype == C.LEADERINFO and leaderinfo.epoch == 1

    def test_followerinfo_sent_once(self, spec):
        state = self.after_election(spec)
        state = run(
            spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(0, 2)
        )
        assert disabled(
            spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(0, 2)
        )

    def test_leader_abdicates_to_better_follower(self, spec):
        # A follower whose ACKEPOCH carries better credentials forces the
        # leader back to election (the implementation shuts down).
        state = self.after_election(spec)
        state = state.set(
            history=((txn(1, 1),), (), ()),
            current_epoch=(1, 0, 0),
        )
        state = run(
            spec, state, "ConnectAndFollowerSendFOLLOWERINFO", pair=(0, 2)
        )
        state = run(spec, state, "LeaderProcessFOLLOWERINFO", pair=(2, 0))
        state = run(spec, state, "FollowerProcessLEADERINFO", pair=(0, 2))
        state = run(spec, state, "LeaderProcessACKEPOCH", pair=(2, 0))
        assert state["state"][2] == C.LOOKING
