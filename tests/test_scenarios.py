"""Tests for the scenario builder."""

import pytest

from repro.zookeeper import ZkConfig, make_spec
from repro.zookeeper import constants as C
from repro.zookeeper.scenarios import Scenario, ScenarioError

CFG = ZkConfig(max_txns=2, max_crashes=2, max_partitions=0, max_epoch=3)


@pytest.fixture(params=["mSpec-1", "mSpec-2", "mSpec-3"])
def spec(request):
    return make_spec(request.param, CFG)


class TestScenario:
    def test_serving_cluster_reaches_broadcast(self, spec):
        scenario = Scenario(spec).serving_cluster()
        assert scenario.state["zab_state"] == (C.BROADCAST,) * 3
        assert scenario.state["state"][2] == C.LEADING

    def test_commit_transaction(self, spec):
        scenario = (
            Scenario(spec).serving_cluster().commit_transaction(2, 0)
        )
        state = scenario.state
        assert state["last_committed"][2] == 1
        assert state["last_committed"][0] == 1
        assert state["g_committed"]

    def test_disabled_action_raises(self, spec):
        with pytest.raises(ScenarioError, match="not enabled"):
            Scenario(spec).apply("LeaderProcessRequest", i=0)

    def test_unknown_action_raises(self, spec):
        with pytest.raises(ScenarioError, match="no action instance"):
            Scenario(spec).apply("Bogus", i=0)

    def test_trace_is_replayable(self, spec):
        scenario = Scenario(spec).serving_cluster()
        trace = scenario.trace()
        states = spec.replay(trace.labels, trace.initial)
        assert states[-1] == scenario.state

    def test_crash_restart(self, spec):
        scenario = Scenario(spec).serving_cluster().crash(0).restart(0)
        assert scenario.state["state"][0] == C.LOOKING

    def test_scenarios_preserve_protocol_invariants(self, spec):
        from repro.zab.invariants import protocol_invariants

        scenario = (
            Scenario(spec)
            .serving_cluster()
            .commit_transaction(2, 0)
            .crash(1)
            .restart(1)
        )
        for state in scenario.states:
            for inv in protocol_invariants():
                assert inv.holds(spec.config, state), inv.ident
