"""Crash-safe campaigns: the journal, supervised execution, and the
chaos lane.

The acceptance bars of the robustness work live here:

- a campaign killed mid-run and resumed from its journal produces a
  report bitwise-identical to an uninterrupted run, on the fork AND the
  socket backend;
- a campaign run under seeded harness fault injection (the chaos
  backend) produces the same findings as a clean run, with a truthful
  ``degraded`` section;
- retry, backoff, quarantine and timeout policy are unit-covered.
"""

import json
import os

import pytest

from repro.checker import parallel
from repro.checker.backends import create_backend
from repro.checker.backends.fork import ForkBackend
from repro.checker.backends.sockets import SocketBackend
from repro.checker.backends.supervision import (
    QUARANTINE,
    RETRY,
    SupervisionPolicy,
    TaskSupervisor,
)
from repro.checker.backends.testing import ChaosSocketBackend
from repro.remix.campaign import CampaignRequest, clean_degraded, run_campaign
from repro.remix.journal import (
    CampaignJournal,
    JournaledBackend,
    request_digest,
    task_key,
)

ADD_ONE = "repro.checker.backends.testing:add_one"
DIE_ALWAYS = "repro.checker.backends.testing:die_always"
SLEEPY = "repro.checker.backends.testing:sleepy"

#: A small but non-trivial campaign: two scenarios, a crash lane, both
#: directions -- enough cells to interrupt halfway through.
CAMPAIGN_KW = dict(
    grains=("mSpec-1",),
    scenarios=("election", "sync"),
    faults=("none", "crash-follower"),
    traces=1,
    max_steps=5,
    seed=7,
    workers=2,
    directions=("topdown", "bottomup"),
)


def report_identity(report_json):
    """The bitwise-comparison form of a report (elapsed time excluded --
    the single legitimately non-deterministic field)."""
    report_json["campaign"].pop("elapsed_seconds", None)
    return json.dumps(report_json, sort_keys=True)


class TestSupervisionPolicy:
    def test_backoff_grows_exponentially(self):
        sup = TaskSupervisor(
            SupervisionPolicy(
                backoff=0.1, backoff_factor=2.0, max_retries=9,
                quarantine_after=99,
            )
        )
        sup.begin_map()
        delays = []
        for _ in range(3):
            assert sup.worker_died(0, {"t": 0}) == RETRY
            delays.append(sup.backoff_delay(0))
        assert delays == [0.1, 0.2, 0.4]

    def test_quarantine_after_repeated_deaths(self):
        sup = TaskSupervisor(SupervisionPolicy(quarantine_after=2))
        sup.begin_map()
        assert sup.worker_died(3, {"t": 3}) == RETRY
        assert sup.worker_died(3, {"t": 3}) == QUARANTINE
        assert "task-3" in sup.quarantined
        assert sup.snapshot()["worker_deaths"] == 2

    def test_quarantine_after_retry_budget(self):
        sup = TaskSupervisor(
            SupervisionPolicy(max_retries=1, quarantine_after=99)
        )
        sup.begin_map()
        assert sup.task_timed_out(0, {"t": 0}) == RETRY
        assert sup.task_timed_out(0, {"t": 0}) == QUARANTINE
        assert sup.timeouts == 2

    def test_begin_map_resets_per_task_counts_not_totals(self):
        sup = TaskSupervisor(SupervisionPolicy(quarantine_after=2))
        sup.begin_map()
        sup.worker_died(0, {"t": 0})
        sup.begin_map()
        # same index, fresh map: not poison yet
        assert sup.worker_died(0, {"t": 0}) == RETRY
        assert sup.worker_deaths == 2  # totals persist

    def test_describe_labels_events(self):
        sup = TaskSupervisor(
            SupervisionPolicy(quarantine_after=1),
            describe=lambda task: task["cell"],
        )
        sup.begin_map()
        assert sup.worker_died(0, {"cell": "a/b/c"}) == QUARANTINE
        assert "a/b/c" in sup.quarantined
        assert sup.events[0]["task"] == "a/b/c"

    def test_respawn_budget_defaults_to_twice_the_band(self):
        sup = TaskSupervisor()
        assert sup.respawn_allowed(2)
        for _ in range(4):
            sup.worker_respawned()
        assert not sup.respawn_allowed(2)

    def test_clean_supervisor_snapshot_is_clean(self):
        sup = TaskSupervisor()
        assert sup.clean
        assert sup.snapshot() == clean_degraded()["supervision"]


@pytest.mark.skipif(not parallel.available(), reason="needs fork")
class TestForkSupervision:
    def test_poison_task_quarantined_not_fatal(self):
        sup = TaskSupervisor(
            SupervisionPolicy(quarantine_after=2, backoff=0.01)
        )
        backend = ForkBackend(DIE_ALWAYS, workers=2, supervisor=sup)
        try:
            tasks = [{"value": n, "poison": n == 1} for n in range(4)]
            results = backend.map(tasks)
            assert results[1] is None  # quarantined, not retried forever
            assert [r["value"] for n, r in enumerate(results) if n != 1] == [
                0, 2, 3,
            ]
            assert sup.quarantined
        finally:
            backend.close()

    def test_watchdog_kills_and_retries_hung_task(self):
        sup = TaskSupervisor(
            SupervisionPolicy(
                task_timeout=0.3, max_retries=0, quarantine_after=1,
                backoff=0.01,
            )
        )
        backend = ForkBackend(SLEEPY, workers=2, supervisor=sup)
        try:
            tasks = [{"value": 0, "sleep": 30.0}, {"value": 1}]
            results = backend.map(tasks)
            assert results[0] is None  # timed out, then quarantined
            assert results[1] == {"value": 1}
            assert sup.timeouts >= 1
        finally:
            backend.close()


@pytest.mark.skipif(not parallel.available(), reason="needs subprocesses")
class TestSocketSupervision:
    def test_poison_task_quarantined_not_fatal(self):
        sup = TaskSupervisor(
            SupervisionPolicy(quarantine_after=2, backoff=0.01)
        )
        backend = SocketBackend(DIE_ALWAYS, workers=2, supervisor=sup)
        try:
            tasks = [{"value": n, "poison": n == 1} for n in range(4)]
            results = backend.map(tasks)
            assert results[1] is None
            assert [r["value"] for n, r in enumerate(results) if n != 1] == [
                0, 2, 3,
            ]
            assert sup.quarantined
        finally:
            backend.close()

    def test_auth_token_gates_workers(self):
        backend = SocketBackend(ADD_ONE, workers=2, auth_token="sesame")
        try:
            assert backend.map([{"value": 1}]) == [{"value": 2}]
        finally:
            backend.close()

    def test_wrong_token_rejected_with_error_frame(self):
        import socket as socketlib

        from repro.checker.backends.sockets import PROTOCOL

        backend = SocketBackend(
            ADD_ONE, workers=1, spawn=False, auth_token="right",
            connect_timeout=2.0,
        )
        try:
            rogue = socketlib.create_connection(backend.address)
            hello = {
                "type": "hello", "protocol": PROTOCOL,
                "pid": os.getpid(), "token": "wrong",
            }
            rogue.sendall((json.dumps(hello) + "\n").encode())
            # no verified worker ever joins -> the map times out
            with pytest.raises(RuntimeError, match="no worker connected"):
                backend.map([{"value": 1}])
            # ... and the rogue got one error frame, then EOF
            rogue.settimeout(2.0)
            wire = rogue.makefile().read()
            assert json.loads(wire.splitlines()[0])["type"] == "error"
            rogue.close()
        finally:
            backend.close()


class TestJournalUnits:
    REQ = CampaignRequest(grains=("mSpec-1",), scenarios=("election",))

    def test_digest_ignores_execution_only_fields(self):
        base = request_digest(self.REQ)
        moved = CampaignRequest(
            grains=("mSpec-1",), scenarios=("election",),
            workers=8, backend="socket", task_timeout=5.0,
            task_retries=9, auth_token="s3",
        )
        assert request_digest(moved) == base
        other = CampaignRequest(grains=("mSpec-1",), scenarios=("sync",))
        assert request_digest(other) != base

    def test_task_key_forms(self):
        shrink = {"kind": "shrink", "finding": {"fingerprint": "abc"}}
        assert task_key(shrink) == ("shrink", "abc")
        assert task_key({"kind": "mystery"}) is None
        assert task_key("not-a-dict") is None

    def test_record_then_resume_replays(self, tmp_path):
        journal = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        journal.record(("cell", "c1"), {"ok": 1})
        journal.close()
        resumed = CampaignJournal(str(tmp_path), self.REQ, resume=True)
        assert resumed.replayable(("cell", "c1"))
        assert resumed.get(("cell", "c1")) == {"ok": 1}
        assert not resumed.replayable(("cell", "c2"))
        assert not resumed.replayable(None)
        resumed.close()

    def test_fresh_run_truncates(self, tmp_path):
        journal = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        journal.record(("cell", "c1"), {"ok": 1})
        journal.close()
        fresh = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        assert len(fresh) == 0
        fresh.close()
        assert os.path.getsize(fresh.path) == 0

    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        journal.record(("cell", "c1"), {"ok": 1})
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"v": 1, "digest": "tr')  # the crash's torn write
        resumed = CampaignJournal(str(tmp_path), self.REQ, resume=True)
        assert len(resumed) == 1
        resumed.close()

    def test_foreign_digest_not_replayed(self, tmp_path):
        journal = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        journal.record(("cell", "c1"), {"ok": 1})
        journal.close()
        other = CampaignRequest(grains=("mSpec-1",), scenarios=("sync",))
        resumed = CampaignJournal(str(tmp_path), other, resume=True)
        assert len(resumed) == 0
        resumed.close()

    def test_journaled_backend_replays_without_dispatch(self, tmp_path):
        seeded = CampaignJournal(str(tmp_path), self.REQ, resume=False)
        seeded.record(("shrink", "f1"), {"cached": True})
        seeded.close()
        journal = CampaignJournal(str(tmp_path), self.REQ, resume=True)
        inner = create_backend("fork", ADD_ONE, 1)  # inline degenerate
        backend = JournaledBackend(inner, journal)
        seen = []
        tasks = [
            {"kind": "shrink", "finding": {"fingerprint": "f1"}},
            {"value": 5},
        ]
        results = backend.map(
            tasks, on_result=lambda i, t, r: seen.append((i, r))
        )
        assert results == [{"cached": True}, {"value": 6}]
        assert seen[0] == (0, {"cached": True})  # replay fires first
        backend.close()


class _KillAfter:
    """A progress hook that aborts the campaign after N completed cells
    -- the deterministic stand-in for `kill -9` halfway through."""

    def __init__(self, cells: int):
        self.remaining = cells

    def __call__(self, event):
        if event.get("event") == "cell_done":
            self.remaining -= 1
            if self.remaining <= 0:
                raise KeyboardInterrupt


@pytest.mark.skipif(not parallel.available(), reason="needs subprocesses")
class TestKillAndResume:
    """The tentpole acceptance bar: kill a journaled campaign at ~50%,
    resume, and get the uninterrupted report bit for bit."""

    def _identity_after_kill(self, tmp_path, backend):
        request = CampaignRequest(**CAMPAIGN_KW, backend=backend)
        clean = report_identity(run_campaign(request).to_json())

        journal_dir = str(tmp_path / backend)
        total = 2 * 2 * 2 * 2  # directions x scenarios x faults (x grains)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                request,
                progress=_KillAfter(total // 2),
                journal_dir=journal_dir,
            )
        journal = CampaignJournal(
            str(journal_dir), request, resume=True
        )
        assert 0 < len(journal) < total, "the kill must land mid-run"
        journal.close()

        replayed = []

        def watch(event):
            if event.get("replayed"):
                replayed.append(event["cell_id"])

        resumed = run_campaign(
            request, progress=watch, journal_dir=journal_dir, resume=True
        )
        assert replayed, "resume must replay journaled cells"
        assert report_identity(resumed.to_json()) == clean

    def test_fork_campaign_survives_kill(self, tmp_path):
        self._identity_after_kill(tmp_path, "fork")

    def test_socket_campaign_survives_kill(self, tmp_path):
        self._identity_after_kill(tmp_path, "socket")

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_campaign(
                CampaignRequest(**CAMPAIGN_KW, backend="fork"), resume=True
            )


@pytest.mark.skipif(not parallel.available(), reason="needs subprocesses")
class TestChaosLane:
    """Fault-inject the harness itself; the report must not notice."""

    def test_chaos_backend_results_survive_faults(self):
        backend = ChaosSocketBackend(
            ADD_ONE, workers=2, chaos_seed=123,
            kill_rate=0.2, drop_rate=0.1, delay_rate=0.3, delay=0.005,
            dup_rate=0.2,
        )
        try:
            tasks = [{"value": n} for n in range(30)]
            results = backend.map(tasks)
            assert results == [{"value": n + 1} for n in range(30)]
            assert sum(backend.injected.values()) > 0, (
                "seed 123 must actually inject faults"
            )
        finally:
            backend.close()

    def test_hang_rate_requires_watchdog(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ChaosSocketBackend(ADD_ONE, workers=1, hang_rate=0.5)

    def test_hung_frames_rescued_by_watchdog(self):
        sup = TaskSupervisor(
            SupervisionPolicy(
                task_timeout=0.3, max_retries=10_000,
                quarantine_after=10_000, max_respawns=10_000, backoff=0.01,
            )
        )
        backend = ChaosSocketBackend(
            ADD_ONE, workers=2, chaos_seed=123,
            kill_rate=0.0, drop_rate=0.0, delay_rate=0.0, dup_rate=0.0,
            hang_rate=0.5, supervisor=sup,
        )
        try:
            tasks = [{"value": n} for n in range(8)]
            assert backend.map(tasks) == [
                {"value": n + 1} for n in range(8)
            ]
            assert backend.injected["hangs"] > 0
        finally:
            backend.close()

    def test_campaign_report_identical_under_chaos(self):
        """The differential lane: a chaos campaign's findings and cells
        equal the clean run's; only ``degraded`` may differ, and it must
        tell the truth."""
        clean = run_campaign(
            CampaignRequest(**CAMPAIGN_KW, backend="fork")
        ).to_json()
        chaos = run_campaign(
            # generous retry budget: injected faults must be retried
            # through, not quarantined into missing cells
            CampaignRequest(**CAMPAIGN_KW, backend="chaos", task_retries=100)
        ).to_json()
        degraded = chaos.pop("degraded")
        clean_degraded_section = clean.pop("degraded")
        assert clean_degraded_section == clean_degraded()
        assert report_identity(chaos) == report_identity(clean)
        # truthfulness: the supervision half is reported verbatim and
        # nothing was quarantined away (every injected fault was retried
        # through; the matching clean report proves it)
        supervision = degraded["supervision"]
        assert set(supervision) == {
            "retries", "timeouts", "worker_deaths", "respawns", "quarantined",
        }
        assert supervision["quarantined"] == []
        assert degraded["quarantined_cells"] == []
        assert degraded["skipped_cells"] == []
