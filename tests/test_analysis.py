"""Tests for the efforts metrics (Table 3) and the bug lineage (Figure 8)."""

import networkx as nx
import pytest

from repro.analysis import (
    EDGES,
    ISSUES,
    descendants_of_optimization,
    generations,
    lineage_graph,
    measure,
    render_ascii,
    roots,
    table3,
    unfixed_at_publication,
)


class TestEfforts:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3()

    def test_three_rows(self, rows):
        assert [r.name for r in rows] == ["mSpec-1", "mSpec-2", "mSpec-3"]
        assert [r.base for r in rows] == ["SysSpec", "mSpec-1", "mSpec-2"]

    def test_coarsening_removes_actions(self, rows):
        # Table 3: mSpec-1 has 7 fewer actions than SysSpec (the eight
        # Election+Discovery actions collapse into one).
        assert rows[0].actions_delta == -7

    def test_coarsening_removes_variables(self, rows):
        assert rows[0].variables_delta < 0

    def test_fine_graining_adds_actions(self, rows):
        assert rows[1].actions_delta > 0
        assert rows[2].actions_delta > 0

    def test_fine_graining_adds_pointcuts(self, rows):
        assert rows[1].pointcuts_delta > 0
        assert rows[2].pointcuts_delta > 0

    def test_diffs_are_modest(self, rows):
        # The paper's point: each refinement is a few-hundred-line diff.
        for row in rows:
            assert row.lines_added + row.lines_removed < 500

    def test_measure_sysspec(self):
        metrics = measure("SysSpec")
        assert metrics.actions > 20
        assert metrics.pointcuts is None  # not deterministically mappable

    def test_row_str(self, rows):
        assert "mSpec-1 - SysSpec" in str(rows[0])


class TestLineage:
    def test_graph_is_a_dag(self):
        graph = lineage_graph()
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == len(EDGES)

    def test_root_is_the_optimization(self):
        assert roots() == ["ZK-2678"]

    def test_all_bugs_descend_from_the_optimization(self):
        assert set(descendants_of_optimization()) == set(ISSUES) - {"ZK-2678"}

    def test_paper_bugs_unfixed_at_publication(self):
        unfixed = set(unfixed_at_publication())
        assert unfixed == {
            "ZK-3023",
            "ZK-4394",
            "ZK-4643",
            "ZK-4646",
            "ZK-4685",
            "ZK-4712",
        }

    def test_zk3911_fix_opened_new_paths(self):
        graph = lineage_graph()
        assert set(graph.successors("ZK-3911")) == {
            "ZK-3023",
            "ZK-4685",
            "ZK-4712",
        }

    def test_generations_start_with_root(self):
        layers = generations()
        assert layers[0] == ["ZK-2678"]
        assert len(layers) >= 3

    def test_render_mentions_every_issue(self):
        text = render_ascii()
        for ident in ISSUES:
            assert ident in text
