"""Unit and property tests for repro.tla.state."""

import pytest
from hypothesis import given, strategies as st

from repro.tla.state import Schema, State


@pytest.fixture
def schema():
    return Schema(("x", "y", "z"))


class TestSchema:
    def test_index(self, schema):
        assert schema.index("y") == 1

    def test_contains(self, schema):
        assert "x" in schema
        assert "w" not in schema

    def test_len(self, schema):
        assert len(schema) == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(("a", "a"))


class TestState:
    def test_make_and_access(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.x == 1
        assert state["y"] == 2

    def test_make_missing_variable(self, schema):
        with pytest.raises(ValueError, match="missing"):
            State.make(schema, x=1, y=2)

    def test_make_unknown_variable(self, schema):
        with pytest.raises(ValueError, match="unknown"):
            State.make(schema, x=1, y=2, z=3, w=4)

    def test_wrong_value_count(self, schema):
        with pytest.raises(ValueError):
            State(schema, (1, 2))

    def test_immutability(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        with pytest.raises(TypeError):
            state.x = 9

    def test_set_returns_new_state(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        other = state.set(x=9)
        assert other.x == 9 and other.y == 2
        assert state.x == 1

    def test_equality_and_hash(self, schema):
        a = State.make(schema, x=1, y=2, z=3)
        b = State.make(schema, x=1, y=2, z=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a.set(x=2) != a

    def test_mapping_protocol(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert list(state) == ["x", "y", "z"]
        assert dict(state) == {"x": 1, "y": 2, "z": 3}

    def test_project_is_canonical(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.project({"x", "z"}) == (1, 3)
        assert state.project({"z", "x"}) == (1, 3)

    def test_project_ignores_unknown(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.project({"x", "nope"}) == (1,)

    def test_diff(self, schema):
        a = State.make(schema, x=1, y=2, z=3)
        b = a.set(y=5)
        assert a.diff(b) == {"y": (2, 5)}
        assert a.diff(a) == {}

    def test_attribute_error(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        with pytest.raises(AttributeError):
            state.nope


values = st.integers(min_value=-5, max_value=5)


@given(values, values, values, values)
def test_set_get_roundtrip(x, y, z, new_x):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=x, y=y, z=z)
    assert state.set(x=new_x).x == new_x
    assert state.set(x=new_x).y == y


@given(values, values, values)
def test_set_noop_preserves_equality(x, y, z):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=x, y=y, z=z)
    assert state.set(x=x) == state
    assert hash(state.set(x=x)) == hash(state)


@given(st.dictionaries(st.sampled_from(["x", "y", "z"]), values, min_size=1))
def test_set_many(updates):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=0, y=0, z=0)
    updated = state.set(**updates)
    for name in schema.names:
        assert updated[name] == updates.get(name, 0)
    assert state.set_many(updates) == updated


@given(st.dictionaries(st.sampled_from(["x", "y", "z"]), values, min_size=1))
def test_set_many_fingerprint_delta_matches_full_recompute(updates):
    from repro.checker.fingerprint import Fingerprinter, IncrementalFingerprinter

    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=0, y=1, z="s")
    inc = IncrementalFingerprinter(schema)
    full = Fingerprinter()
    nxt, delta = state.set_many(updates, fingerprinter=inc)
    assert inc.of_state(state) ^ delta == full.of_state(nxt)
    # A delta is an XOR mask: applying it twice round-trips.
    back, delta_back = nxt.set_many(dict(state), fingerprinter=inc)
    assert back == state
    assert delta ^ delta_back == 0


def test_incremental_fingerprinter_successor():
    from repro.checker.fingerprint import Fingerprinter, IncrementalFingerprinter

    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=0, y=0, z=0)
    inc = IncrementalFingerprinter(schema)
    fp = inc.seed(state)[0]
    nxt, nfp = inc.successor(fp, state, {"y": 7})
    assert nxt.y == 7
    assert nfp == Fingerprinter().of_state(nxt)


class TestSchemaInterning:
    def test_same_names_same_object(self):
        assert Schema(("p", "q")) is Schema(("p", "q"))

    def test_intern_table_is_weak(self):
        # A schema nothing references anymore must leave the intern
        # table instead of accumulating for the life of the process
        # (long campaign runs compose many throwaway specs).
        import gc

        names = ("only_used_in_this_test_a", "only_used_in_this_test_b")
        Schema(names)
        gc.collect()
        assert names not in Schema._interned
        # ...but stays interned for exactly as long as it is referenced.
        held = Schema(names)
        gc.collect()
        assert Schema._interned[names] is held

    def test_pickled_state_reinterns_schema(self):
        import pickle

        schema = Schema(("r", "s"))
        state = State.make(schema, r=1, s=2)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.schema is schema
        assert clone == state
