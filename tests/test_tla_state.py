"""Unit and property tests for repro.tla.state."""

import pytest
from hypothesis import given, strategies as st

from repro.tla.state import Schema, State


@pytest.fixture
def schema():
    return Schema(("x", "y", "z"))


class TestSchema:
    def test_index(self, schema):
        assert schema.index("y") == 1

    def test_contains(self, schema):
        assert "x" in schema
        assert "w" not in schema

    def test_len(self, schema):
        assert len(schema) == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(("a", "a"))


class TestState:
    def test_make_and_access(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.x == 1
        assert state["y"] == 2

    def test_make_missing_variable(self, schema):
        with pytest.raises(ValueError, match="missing"):
            State.make(schema, x=1, y=2)

    def test_make_unknown_variable(self, schema):
        with pytest.raises(ValueError, match="unknown"):
            State.make(schema, x=1, y=2, z=3, w=4)

    def test_wrong_value_count(self, schema):
        with pytest.raises(ValueError):
            State(schema, (1, 2))

    def test_immutability(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        with pytest.raises(TypeError):
            state.x = 9

    def test_set_returns_new_state(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        other = state.set(x=9)
        assert other.x == 9 and other.y == 2
        assert state.x == 1

    def test_equality_and_hash(self, schema):
        a = State.make(schema, x=1, y=2, z=3)
        b = State.make(schema, x=1, y=2, z=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a.set(x=2) != a

    def test_mapping_protocol(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert list(state) == ["x", "y", "z"]
        assert dict(state) == {"x": 1, "y": 2, "z": 3}

    def test_project_is_canonical(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.project({"x", "z"}) == (1, 3)
        assert state.project({"z", "x"}) == (1, 3)

    def test_project_ignores_unknown(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        assert state.project({"x", "nope"}) == (1,)

    def test_diff(self, schema):
        a = State.make(schema, x=1, y=2, z=3)
        b = a.set(y=5)
        assert a.diff(b) == {"y": (2, 5)}
        assert a.diff(a) == {}

    def test_attribute_error(self, schema):
        state = State.make(schema, x=1, y=2, z=3)
        with pytest.raises(AttributeError):
            state.nope


values = st.integers(min_value=-5, max_value=5)


@given(values, values, values, values)
def test_set_get_roundtrip(x, y, z, new_x):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=x, y=y, z=z)
    assert state.set(x=new_x).x == new_x
    assert state.set(x=new_x).y == y


@given(values, values, values)
def test_set_noop_preserves_equality(x, y, z):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=x, y=y, z=z)
    assert state.set(x=x) == state
    assert hash(state.set(x=x)) == hash(state)


@given(st.dictionaries(st.sampled_from(["x", "y", "z"]), values, min_size=1))
def test_set_many(updates):
    schema = Schema(("x", "y", "z"))
    state = State.make(schema, x=0, y=0, z=0)
    updated = state.set(**updates)
    for name in schema.names:
        assert updated[name] == updates.get(name, 0)
