"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_spec_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "nope"])

    def test_config_args(self):
        args = build_parser().parse_args(
            ["check", "mSpec-2", "--txns", "2", "--crashes", "3"]
        )
        assert args.txns == 2 and args.crashes == 3


class TestCommands:
    def test_check_finds_zk4394(self, capsys):
        code = main(
            [
                "check",
                "mSpec-1",
                "--unmask-zk4394",
                "--max-states",
                "50000",
                "--max-time",
                "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # violation found
        assert "I-14" in out

    def test_check_with_trace(self, capsys):
        code = main(
            [
                "check",
                "mSpec-1",
                "--unmask-zk4394",
                "--trace",
                "--max-states",
                "50000",
                "--max-time",
                "60",
            ]
        )
        out = capsys.readouterr().out
        assert "State 0 (initial):" in out

    def test_check_masked_passes(self, capsys):
        code = main(
            ["check", "mSpec-1", "--max-states", "30000", "--max-time", "30"]
        )
        assert code == 0

    def test_conformance(self, capsys):
        code = main(
            ["conformance", "mSpec-3", "--traces", "10", "--steps", "15"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 discrepancies" in out

    def test_efforts(self, capsys):
        assert main(["efforts"]) == 0
        out = capsys.readouterr().out
        assert "mSpec-1 - SysSpec" in out

    def test_lineage(self, capsys):
        assert main(["lineage"]) == 0
        out = capsys.readouterr().out
        assert "ZK-2678" in out
