"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_spec_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "nope"])

    def test_config_args(self):
        args = build_parser().parse_args(
            ["check", "mSpec-2", "--txns", "2", "--crashes", "3"]
        )
        assert args.txns == 2 and args.crashes == 3

    def test_engine_args(self):
        args = build_parser().parse_args(
            ["check", "mSpec-3", "--workers", "4", "--strategy", "portfolio"]
        )
        assert args.workers == 4 and args.strategy == "portfolio"

    def test_engine_args_on_bugs_and_protocol(self):
        args = build_parser().parse_args(["bugs", "--workers", "2"])
        assert args.workers == 2 and args.strategy == "bfs"
        args = build_parser().parse_args(["protocol", "--strategy", "dfs"])
        assert args.strategy == "dfs"

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "mSpec-1", "--strategy", "zen"])


class TestCommands:
    def test_check_finds_zk4394(self, capsys):
        code = main(
            [
                "check",
                "mSpec-1",
                "--unmask-zk4394",
                "--max-states",
                "50000",
                "--max-time",
                "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # violation found
        assert "I-14" in out

    def test_check_with_trace(self, capsys):
        code = main(
            [
                "check",
                "mSpec-1",
                "--unmask-zk4394",
                "--trace",
                "--max-states",
                "50000",
                "--max-time",
                "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # violation found
        assert "State 0 (initial):" in out

    def test_check_masked_passes(self, capsys):
        code = main(
            ["check", "mSpec-1", "--max-states", "30000", "--max-time", "30"]
        )
        assert code == 0

    def test_check_parallel_matches_sequential(self, capsys):
        argv = [
            "check",
            "mSpec-1",
            "--unmask-zk4394",
            "--max-states",
            "20000",
            "--max-time",
            "60",
        ]
        code_seq = main(argv + ["--workers", "1"])
        out_seq = capsys.readouterr().out
        code_par = main(argv + ["--workers", "2"])
        out_par = capsys.readouterr().out
        assert code_seq == code_par == 1
        # identical states/transitions/violation counts, timing aside
        strip = lambda s: s.split(" states")[0].split("] ")[1]  # noqa: E731
        assert strip(out_seq) == strip(out_par)

    def test_check_portfolio_strategy(self, capsys):
        code = main(
            [
                "check",
                "mSpec-3",
                "--strategy",
                "portfolio",
                "--max-states",
                "50000",
                "--max-time",
                "90",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out

    def test_conformance(self, capsys):
        code = main(
            ["conformance", "mSpec-3", "--traces", "10", "--steps", "15"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 discrepancies" in out

    def test_efforts(self, capsys):
        assert main(["efforts"]) == 0
        out = capsys.readouterr().out
        assert "mSpec-1 - SysSpec" in out

    def test_lineage(self, capsys):
        assert main(["lineage"]) == 0
        out = capsys.readouterr().out
        assert "ZK-2678" in out
