"""Unit tests for the implementation simulator (repro.impl)."""

import pytest

from conftest import txn
from repro.impl import (
    Ensemble,
    Network,
    NullPointerException,
    SyncAssertionError,
    UnrecognizedAckError,
)
from repro.tla.values import Rec, Zxid, ZXID_ZERO
from repro.zookeeper import constants as C
from repro.zookeeper.config import FINAL_FIX, SpecVariant, V391


class TestNetwork:
    def test_fifo(self):
        net = Network(2)
        net.send(0, 1, Rec(mtype="A"), Rec(mtype="B"))
        assert net.recv(0, 1).mtype == "A"
        assert net.peek(0, 1).mtype == "B"

    def test_partition_drops(self):
        net = Network(2)
        net.partition(0, 1)
        net.send(0, 1, Rec(mtype="A"))
        assert net.peek(0, 1) is None
        net.heal(0, 1)
        net.send(0, 1, Rec(mtype="A"))
        assert net.peek(0, 1) is not None

    def test_down_node_unreachable(self):
        net = Network(2)
        net.mark_down(1)
        net.send(0, 1, Rec(mtype="A"))
        assert net.peek(0, 1) is None

    def test_clear_server(self):
        net = Network(3)
        net.send(0, 1, Rec(mtype="A"))
        net.send(2, 0, Rec(mtype="B"))
        net.clear_server(0)
        assert net.peek(0, 1) is None and net.peek(2, 0) is None

    def test_snapshot_shape(self):
        net = Network(2)
        net.send(0, 1, Rec(mtype="A"))
        snap = net.snapshot()
        assert snap[0][1][0].mtype == "A"
        assert snap[1][0] == ()


def synced_pair(variant=V391, divergence=""):
    """Leader 2 + follower 0, synced to BROADCAST."""
    ens = Ensemble(3, variant, divergence)
    assert ens.run_election(2, (0, 2))
    assert ens.nodes[2].leader_sync_follower(0)
    assert ens.nodes[0].follower_process_sync_message(2)
    assert ens.nodes[0].follower_process_newleader_atomic(2)
    assert ens.nodes[2].leader_process_ack(0)
    assert ens.nodes[0].follower_process_uptodate_baseline(2)
    return ens


class TestEnsembleLifecycle:
    def test_election_requires_max_credentials(self):
        ens = Ensemble(3)
        assert not ens.run_election(0, (0, 1, 2))
        assert ens.run_election(2, (0, 1, 2))

    def test_election_refuses_non_member_leader(self):
        ens = Ensemble(3)
        assert not ens.run_election(2, (0, 1))

    def test_sync_round_reaches_broadcast(self):
        ens = synced_pair()
        assert ens.nodes[2].zab_state == C.BROADCAST
        assert ens.nodes[0].zab_state == C.BROADCAST

    def test_commit_round(self):
        ens = synced_pair()
        assert ens.client_request(2)
        assert ens.nodes[0].follower_process_proposal_atomic(2)
        # skip the UPTODATE ack, then the txn ack commits at the leader
        assert ens.nodes[2].leader_process_ack_baseline(0)
        assert ens.nodes[2].last_committed == 1
        assert ens.nodes[0].follower_process_commit_atomic(2)
        assert ens.nodes[0].last_committed == 1

    def test_crash_loses_volatile_keeps_log(self):
        ens = synced_pair()
        ens.client_request(2)
        ens.nodes[0].follower_process_proposal(2)  # queued only
        ens.crash(0)
        assert ens.nodes[0].queued_requests == []
        ens.restart(0)
        assert ens.nodes[0].state == C.LOOKING
        assert ens.nodes[0].current_epoch == 1

    def test_follower_shutdown_keeps_queue_in_v391(self):
        ens = synced_pair()
        ens.client_request(2)
        ens.nodes[0].follower_process_proposal(2)
        ens.crash(2)
        assert ens.follower_shutdown(0)
        assert ens.nodes[0].queued_requests  # ZK-4712

    def test_fixed_shutdown_clears_queue(self):
        ens = synced_pair(variant=SpecVariant(fix_follower_shutdown=True))
        ens.client_request(2)
        ens.nodes[0].follower_process_proposal(2)
        ens.crash(2)
        assert ens.follower_shutdown(0)
        assert ens.nodes[0].queued_requests == []

    def test_leader_shutdown_on_quorum_loss(self):
        ens = synced_pair()
        ens.crash(0)
        ens.crash(1)
        assert ens.leader_shutdown(2)
        assert ens.nodes[2].state == C.LOOKING

    def test_snapshot_is_model_shaped(self):
        snap = synced_pair().snapshot()
        assert snap["state"] == (C.FOLLOWING, C.LOOKING, C.LEADING)
        assert snap["current_epoch"] == (1, 0, 1)
        assert isinstance(snap["history"], tuple)


class TestBugSymptoms:
    def test_zk4394_null_pointer(self):
        """COMMIT between NEWLEADER and UPTODATE with no matching packet."""
        ens = Ensemble(3, V391)
        ens.run_election(2, (0, 2))
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        ens.nodes[0].follower_process_newleader_atomic(2)
        ens.network.send(2, 0, Rec(mtype=C.COMMIT, zxid=Zxid(1, 1)))
        with pytest.raises(NullPointerException):
            ens.nodes[0].follower_process_commit_in_sync(2)

    def test_zk4394_fixed_by_commit_matching(self):
        variant = SpecVariant(match_commit_in_sync=True)
        ens = Ensemble(3, variant)
        ens.run_election(2, (0, 2))
        t = txn(1, 1)
        ens.nodes[2].history = [t]
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        ens.nodes[0].follower_process_newleader_atomic(2)
        ens.network.send(2, 0, Rec(mtype=C.COMMIT, zxid=t.zxid))
        assert ens.nodes[0].follower_process_commit_in_sync(2)
        assert ens.nodes[0].last_committed == 1

    def test_zk4685_unrecognized_ack(self):
        """A txn ACK while the leader waits for the NEWLEADER ACK."""
        ens = Ensemble(3, V391)
        ens.run_election(2, (0, 2))
        ens.nodes[2].leader_sync_follower(0)
        ens.network.send(0, 2, Rec(mtype=C.ACK, zxid=Zxid(1, 5)))
        with pytest.raises(UnrecognizedAckError):
            ens.nodes[2].leader_process_ack(0)

    def test_zk3023_sync_assertion(self):
        """ACK of UPTODATE while the follower's commits are pending."""
        ens = Ensemble(3, V391)
        ens.run_election(2, (0, 2))
        ens.nodes[2].history = [txn(1, 1)]
        ens.nodes[2].last_committed = 1  # already committed pre-election
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        ens.nodes[0].follower_process_newleader_atomic(2)
        ens.nodes[2].leader_process_ack(0)  # establish, commit_count = 1
        assert ens.nodes[0].follower_process_uptodate(2)
        assert ens.nodes[0].committed_requests  # async commit pending
        with pytest.raises(SyncAssertionError):
            ens.nodes[2].leader_process_ack(0)

    def test_zk3023_fixed_by_synchronous_commit(self):
        variant = SpecVariant(synchronous_commit=True)
        ens = Ensemble(3, variant)
        ens.run_election(2, (0, 2))
        ens.nodes[2].history = [txn(1, 1)]
        ens.nodes[2].last_committed = 1
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        ens.nodes[0].follower_process_newleader_atomic(2)
        ens.nodes[2].leader_process_ack(0)
        assert ens.nodes[0].follower_process_uptodate(2)
        assert ens.nodes[2].leader_process_ack(0)  # assertion holds

    def test_zk4643_crash_window(self):
        """Epoch persisted, history not: the v3.9.1 order."""
        ens = Ensemble(3, V391)
        ens.run_election(2, (0, 2))
        t = txn(1, 1)
        ens.nodes[2].history = [t]
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        assert ens.nodes[0].step_update_epoch(2)
        # crash before the log step: high epoch, stale history
        ens.crash(0)
        assert ens.nodes[0].current_epoch == 1
        assert ens.nodes[0].history == []

    def test_zk4643_window_closed_by_ordering(self):
        variant = SpecVariant(history_before_epoch="full")
        ens = Ensemble(3, variant)
        ens.run_election(2, (0, 2))
        t = txn(1, 1)
        ens.nodes[2].history = [t]
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        assert not ens.nodes[0].step_update_epoch(2)  # must log first
        assert ens.nodes[0].step_log(2)
        # with asynchronous logging, "logged" means the queue is drained
        assert not ens.nodes[0].step_update_epoch(2)
        assert ens.nodes[0].sync_processor_step()
        assert ens.nodes[0].step_update_epoch(2)

    def test_final_fix_synchronous_logging(self):
        ens = Ensemble(3, FINAL_FIX)
        ens.run_election(2, (0, 2))
        t = txn(1, 1)
        ens.nodes[2].history = [t]
        ens.nodes[2].ackepoch_recv = {(0, 0, ZXID_ZERO)}
        ens.nodes[2].leader_sync_follower(0)
        ens.nodes[0].follower_process_sync_message(2)
        ens.nodes[0].step_log(2)
        assert ens.nodes[0].history == [t]  # on disk, not queued
        assert ens.nodes[0].queued_requests == []


class TestDiscardStale:
    def test_drops_ack_at_non_leader(self):
        ens = Ensemble(3, V391)
        ens.network.send(1, 0, Rec(mtype=C.ACK, zxid=ZXID_ZERO))
        assert ens.discard_stale(0, 1)
        assert ens.network.peek(1, 0) is None

    def test_keeps_current_leader_traffic(self):
        ens = synced_pair()
        ens.network.send(2, 0, Rec(mtype=C.COMMIT, zxid=ZXID_ZERO))
        assert not ens.discard_stale(0, 2)

    def test_drops_stale_leader_traffic(self):
        ens = synced_pair()
        # node 1 never joined: a COMMIT from 2 is stale for it
        ens.network.send(2, 1, Rec(mtype=C.COMMIT, zxid=ZXID_ZERO))
        assert ens.discard_stale(1, 2)

    def test_empty_channel(self):
        assert not Ensemble(3, V391).discard_stale(0, 1)


class TestFaultEnabledness:
    def test_crash_twice_refused(self):
        ens = Ensemble(3, V391)
        assert ens.crash(0)
        assert not ens.crash(0)

    def test_restart_up_node_refused(self):
        ens = Ensemble(3, V391)
        assert not ens.restart(0)
        ens.crash(0)
        assert ens.restart(0)

    def test_partition_twice_refused(self):
        ens = Ensemble(3, V391)
        assert ens.partition(0, 1)
        assert not ens.partition(0, 1)
        assert ens.heal(0, 1)
        assert not ens.heal(0, 1)

    def test_leader_sync_refused_when_disconnected(self):
        ens = Ensemble(3, V391)
        ens.run_election(2, (0, 1, 2))
        ens.partition(2, 0)
        assert not ens.nodes[2].leader_sync_follower(0)
        assert ens.nodes[2].leader_sync_follower(1)


class TestMessageFaultInjectors:
    """Network.delay/duplicate and the Ensemble's shared fault budget
    (mirroring the model's msg_fault_budget guard)."""

    def test_network_delay_rotates_head_behind(self):
        net = Network(2)
        net.send(0, 1, Rec(mtype="A"), Rec(mtype="B"))
        assert net.delay(0, 1)
        assert net.recv(0, 1).mtype == "B"
        assert net.recv(0, 1).mtype == "A"

    def test_network_delay_needs_two_in_flight(self):
        net = Network(2)
        net.send(0, 1, Rec(mtype="A"))
        assert not net.delay(0, 1)

    def test_network_duplicate_redelivers_head(self):
        net = Network(2)
        net.send(0, 1, Rec(mtype="A"), Rec(mtype="B"))
        assert net.duplicate(0, 1)
        assert [net.recv(0, 1).mtype for _ in range(3)] == ["A", "B", "A"]

    def test_network_duplicate_empty_refused(self):
        assert not Network(2).duplicate(0, 1)

    def test_ensemble_budget_shared_and_exhausted(self):
        ens = Ensemble(3, V391, max_msg_faults=1)
        ens.network.send(2, 0, Rec(mtype="A"), Rec(mtype="B"))
        # pair convention: (receiver, sender) -- operates on channel 2 -> 0
        assert ens.delay_message(0, 2)
        assert not ens.duplicate_message(0, 2)  # the one budget is spent

    def test_ensemble_budget_not_spent_on_refusal(self):
        ens = Ensemble(3, V391, max_msg_faults=1)
        ens.network.send(2, 0, Rec(mtype="A"))
        assert not ens.delay_message(0, 2)  # needs two in flight
        assert ens.duplicate_message(0, 2)  # budget still intact

    def test_ensemble_default_budget_zero(self):
        ens = Ensemble(3, V391)
        ens.network.send(2, 0, Rec(mtype="A"), Rec(mtype="B"))
        assert not ens.delay_message(0, 2)
        assert not ens.duplicate_message(0, 2)
