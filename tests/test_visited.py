"""Tests for the shared-memory visited table and the ``--dedupe shared``
engine modes: single-process semantics, cross-process visibility,
generation growth, overflow fallback, and BFS/DFS result equivalence."""

import multiprocessing as mp

import pytest

from repro.checker import ExplorationEngine, SharedVisitedSet
from repro.checker import visited as visited_mod
from repro.checker.visited import suggest_capacity
from repro.zookeeper import ZkConfig, check_spec

from test_engine import counter_spec

pytestmark = pytest.mark.skipif(
    not visited_mod.available(), reason="POSIX shared memory unavailable"
)

SMALL = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)


class TestSharedVisitedSet:
    def test_add_and_contains(self):
        table = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            fps = [((i * 0x9E3779B97F4A7C15) ^ i) & ((1 << 64) - 1) for i in range(500)]
            for fp in fps:
                assert table.add(fp)
            for fp in fps:
                assert fp in table
                assert not table.add(fp)  # second insert is a no-op
            assert table.inserts == len(set(fps))
            assert 123456789 not in table
        finally:
            table.close()

    def test_fingerprint_zero_is_remapped_consistently(self):
        table = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            assert table.add(0)
            assert 0 in table
            assert not table.add(0)
        finally:
            table.close()

    def test_generation_growth_preserves_membership(self):
        table = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            first = list(range(1, 400))
            for fp in first:
                table.add(fp)
            assert table.should_grow(authoritative_count=4000) or True
            table.grow(authoritative_count=len(first))
            assert table.capacity > (1 << 12)
            second = list(range(10_000, 10_400))
            for fp in second:
                assert table.add(fp)
            for fp in first + second:
                assert fp in table
                assert not table.add(fp)
        finally:
            table.close()

    def test_repeated_growth_keeps_power_of_two_capacities(self):
        # Regression: the second growth used to double the *summed*
        # capacity (3C, not a power of two) and crash segment creation.
        table = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            for generation in range(3):
                table.add(1_000_000 + generation)
                table.grow(authoritative_count=generation + 1)
            for segment in table._segments:
                assert segment.capacity & (segment.capacity - 1) == 0
            for generation in range(3):
                assert (1_000_000 + generation) in table
        finally:
            table.close()

    def test_attach_sees_owner_inserts_and_vice_versa(self):
        owner = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            owner.add(42)
            other = SharedVisitedSet.attach(owner.descriptors())
            try:
                assert 42 in other
                assert other.add(777)
                assert 777 in owner
                # Growth: the attacher picks up new generations by name.
                owner.grow(authoritative_count=1)
                owner.add(555)
                other.attach_new(owner.descriptors())
                assert 555 in other
            finally:
                other.close()
        finally:
            owner.close()

    def test_overflow_fallback_never_drops_fingerprints(self):
        # A deliberately tiny generation: once the probe limit rejects
        # inserts, fingerprints land in the process-local overflow set
        # and stay members.
        table = SharedVisitedSet(initial_capacity=1 << 12)
        try:
            fps = list(range(1, 3 * (1 << 12)))
            for fp in fps:
                table.add(fp)
            for fp in fps:
                assert fp in table
        finally:
            table.close()

    def test_concurrent_inserts_across_processes(self):
        # Four forked writers insert overlapping ranges; every
        # fingerprint must be a member afterwards and the total
        # first-claim count must cover the distinct set (double-claims
        # from races may overcount, never undercount).
        table = SharedVisitedSet(initial_capacity=1 << 14)
        names = table.descriptors()
        context = mp.get_context("fork")
        queue = context.Queue()

        def writer(offset):
            attached = SharedVisitedSet.attach(names)
            claims = 0
            for i in range(1, 2001):
                if attached.add(offset + i):
                    claims += 1
            attached.close()
            queue.put(claims)

        try:
            procs = [
                context.Process(target=writer, args=(offset,))
                for offset in (0, 0, 1000, 5000)
            ]
            for proc in procs:
                proc.start()
            claims = [queue.get(timeout=30) for _ in procs]
            for proc in procs:
                proc.join(timeout=10)
            distinct = set()
            for offset in (0, 0, 1000, 5000):
                distinct.update(offset + i for i in range(1, 2001))
            for fp in distinct:
                assert fp in table
            assert sum(claims) >= len(distinct)
        finally:
            table.close()

    def test_suggest_capacity(self):
        assert suggest_capacity(None) == 1 << 20
        assert suggest_capacity(1000) >= 4000
        cap = suggest_capacity(123_456)
        assert cap & (cap - 1) == 0  # power of two
        assert cap >= 4 * 123_456


class TestSharedDedupeEngine:
    def test_bfs_shared_matches_rounds_and_sequential(self):
        seq = ExplorationEngine(counter_spec(max_x=8, y_bound=99), workers=1).run()
        rounds = ExplorationEngine(
            counter_spec(max_x=8, y_bound=99), workers=2, dedupe="rounds"
        ).run()
        shared = ExplorationEngine(
            counter_spec(max_x=8, y_bound=99), workers=2, dedupe="shared"
        ).run()
        assert seq.states_explored == rounds.states_explored == shared.states_explored
        assert seq.transitions == rounds.transitions == shared.transitions
        assert seq.completed and shared.completed

    def test_bfs_shared_same_violations_on_zookeeper(self):
        budget = dict(max_states=6_000, max_time=120)
        seq = check_spec("mSpec-3", SMALL, workers=1, **budget)
        shared = check_spec(
            "mSpec-3", SMALL, workers=2, dedupe="shared", **budget
        )
        # The shared-table guarantee at fixed budgets: identical
        # visited-state count and violation set.  (Transitions may
        # differ when the budget cuts a run mid-round: real-time dedupe
        # races decide which worker's expansion gets charged, which
        # shifts the truncated frontier.)
        assert seq.states_explored == shared.states_explored
        assert sorted(
            (v.invariant.full_name, v.depth) for v in seq.violations
        ) == sorted((v.invariant.full_name, v.depth) for v in shared.violations)

    def test_bfs_shared_counts_match_at_fixed_budget(self):
        # A budget that cuts the run mid-round: the accepted-state count
        # still matches the sequential run exactly.
        budget = dict(max_states=2_500, max_time=120)
        seq = check_spec("mSpec-2", SMALL, workers=1, **budget)
        shared = check_spec(
            "mSpec-2", SMALL, workers=2, dedupe="shared", **budget
        )
        assert seq.states_explored == shared.states_explored == 2_500

    def test_invalid_dedupe_mode_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(counter_spec(), dedupe="bogus")

    def test_dfs_sharded_finds_violation(self):
        result = ExplorationEngine(
            counter_spec(),
            strategy="dfs",
            workers=2,
            dedupe="shared",
            max_depth=20,
        ).run()
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"
        trace = result.first_violation.trace
        spec = counter_spec()
        assert spec.replay(trace.labels, trace.initial)[-1] == trace.final

    def test_dfs_sharded_explores_full_space_when_unbudgeted(self):
        result = ExplorationEngine(
            counter_spec(max_x=6, y_bound=99),
            strategy="dfs",
            workers=2,
            dedupe="shared",
            max_depth=30,
        ).run()
        assert result.completed
        assert result.states_explored == 28  # x in 0..6, y in 0..x

    def test_dfs_sharded_respects_state_budget(self):
        result = ExplorationEngine(
            counter_spec(max_x=9, y_bound=99),
            strategy="dfs",
            workers=2,
            dedupe="shared",
            max_depth=40,
            max_states=10,
        ).run()
        assert result.budget_exhausted == "max_states"
        assert result.states_explored <= 14  # budget + per-worker slack

    def test_portfolio_shared_finds_violation(self):
        result = ExplorationEngine(
            counter_spec(),
            strategy="portfolio",
            workers=3,
            dedupe="shared",
            max_time=60,
        ).run()
        assert result.found_violation
        assert result.first_violation.invariant.ident == "I-1"
