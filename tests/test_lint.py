"""Tests for the static spec analyzer (``python -m repro lint``).

Covers the three passes (declarations, purity, conformance) on small
fixtures, the two PR-5 lying-declaration regressions against the real
ZooKeeper spec functions, the baseline/CLI plumbing, and the guarantee
that the shipped plugins lint clean.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from lint_fixtures import (
    GoodPlugin,
    SCHEMA_NAMES,
    alias_read,
    dynamic_subscript,
    helper_read,
    helper_updates,
    iterates_set,
    mutable_update_value,
    mutates_global,
    reads_only_x,
    reads_x_and_y,
    rolls_dice,
    sorted_set_read,
    stdlib_metadata,
    stdlib_opaque,
    whole_state_read,
    wrapped_pair,
    writes_x_and_z,
)
from lint_fixtures_broken import BrokenPlugin

from repro.analysis import SpecAnalyzer, lint_plugin, lint_systems
from repro.analysis.declarations import check_action
from repro.analysis.findings import (
    LintReport,
    make_finding,
    new_fingerprints,
)
from repro.cli import main
from repro.tla.action import Action
from repro.remix import registry


def act(fn, reads=(), writes=(), sources=None):
    return Action(
        "Fixture",
        fn,
        params={"i": lambda cfg: range(2)},
        reads=reads,
        writes=writes,
        update_sources=sources or {},
    )


def lint_fn(fn, reads=(), writes=(), sources=None):
    return check_action(
        "fixture", act(fn, reads, writes, sources), SCHEMA_NAMES, SpecAnalyzer()
    )


def line_of(module, needle: str) -> int:
    """The 1-based line of the first source line containing ``needle``."""
    text = Path(module.__file__).read_text()
    for number, line in enumerate(text.splitlines(), 1):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in {module.__file__}")


# --- D rules -------------------------------------------------------------------

class TestDeclarationRules:
    def test_d01_underdeclared_read(self):
        findings = lint_fn(reads_x_and_y, reads=["x"], writes=["x"])
        assert [f.rule for f in findings] == ["D01"]
        assert findings[0].variable == "y"
        assert findings[0].file.endswith("lint_fixtures.py")
        assert findings[0].severity == "error"

    def test_d01_whole_state_read(self):
        findings = lint_fn(whole_state_read, reads=["x"], writes=["x"])
        assert [f.rule for f in findings] == ["D01"]
        assert findings[0].variable == "*"

    def test_d02_overdeclared_read(self):
        findings = lint_fn(reads_only_x, reads=["x", "y"], writes=["x"])
        assert [f.rule for f in findings] == ["D02"]
        assert findings[0].variable == "y"
        assert findings[0].severity == "warning"

    def test_d03_undeclared_write(self):
        findings = lint_fn(writes_x_and_z, reads=["x"], writes=["x"])
        assert [f.rule for f in findings] == ["D03"]
        assert findings[0].variable == "z"

    def test_d04_overdeclared_write(self):
        findings = lint_fn(reads_only_x, reads=["x"], writes=["x", "y"])
        assert [f.rule for f in findings] == ["D04"]
        assert findings[0].variable == "y"

    def test_d05_dynamic_subscript(self):
        findings = lint_fn(dynamic_subscript, reads=["x"], writes=["x"])
        assert "D05" in {f.rule for f in findings}

    def test_d05_state_into_stdlib(self):
        findings = lint_fn(stdlib_opaque, reads=["x"], writes=["x"])
        assert "D05" in {f.rule for f in findings}

    def test_d06_missing_reads(self):
        findings = lint_fn(reads_only_x, writes=["x"])
        assert [f.rule for f in findings] == ["D06"]
        # The finding suggests the closure the analysis recovered.
        assert "'x'" in findings[0].message

    def test_d07_unknown_variable(self):
        findings = lint_fn(reads_only_x, reads=["x", "ghost"], writes=["x"])
        assert "D07" in {f.rule for f in findings}
        assert "ghost" in {f.variable for f in findings}

    def test_d07_sources_without_write(self):
        findings = lint_fn(
            reads_only_x,
            reads=["x"],
            writes=["x"],
            sources={"y": ["x"]},
        )
        assert "D07" in {f.rule for f in findings}


# --- P rules -------------------------------------------------------------------

class TestPurityRules:
    def test_p01_random(self):
        findings = lint_fn(rolls_dice, reads=["x"], writes=["x"])
        assert "P01" in {f.rule for f in findings}

    def test_p02_set_iteration(self):
        findings = lint_fn(iterates_set, reads=["x"], writes=["x"])
        assert "P02" in {f.rule for f in findings}

    def test_p03_global_mutation(self):
        findings = lint_fn(mutates_global, reads=["x"], writes=["x"])
        assert "P03" in {f.rule for f in findings}

    def test_p04_mutable_update_value(self):
        findings = lint_fn(mutable_update_value, reads=["x"], writes=["x"])
        assert "P04" in {f.rule for f in findings}


# --- resolution cases that must NOT trip anything ------------------------------

class TestCleanResolution:
    @pytest.mark.parametrize(
        "fn,reads,writes",
        [
            (alias_read, ["y"], ["x"]),
            (helper_read, ["y"], ["x"]),
            (helper_updates, ["x", "y", "z"], ["x", "y", "z"]),
            (wrapped_pair, ["x", "y"], ["x"]),
            (sorted_set_read, ["x", "y"], ["x"]),
            (stdlib_metadata, ["z"], ["x"]),
        ],
        ids=lambda v: getattr(v, "__name__", None) or "",
    )
    def test_clean(self, fn, reads, writes):
        assert lint_fn(fn, reads=reads, writes=writes) == []


# --- conformance (C rules) via the fixture plugins -----------------------------

class TestConformance:
    def test_good_plugin_is_clean(self):
        assert lint_plugin("goodfix", GoodPlugin()) == []

    def test_broken_plugin_trips_every_rule(self):
        findings = lint_plugin("brokenfix", BrokenPlugin())
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        # No D/P noise: the broken plugin's spec functions are declared
        # correctly; only the plugin contract is wrong.
        assert set(by_rule) == {"C01", "C02", "C03", "C04", "C05", "C06", "C07"}
        # C01: grain "missing" fails make_spec, "badmap" fails make_mapping.
        assert len(by_rule["C01"]) == 2
        assert {f.subject for f in by_rule["C01"]} == {
            "grain:missing",
            "grain:badmap",
        }
        # C02: a constant apply() arg and the constant-tuple loop idiom.
        assert {f.variable for f in by_rule["C02"]} == {"Vanish", "Phantom"}
        # C03: missing "none", unknown action, bad binding (reported
        # once per grain that defines Inc: ok and badmap), bad role.
        messages = " ".join(f.message for f in by_rule["C03"])
        assert len(by_rule["C03"]) == 5
        assert "'none'" in messages
        assert "'Ghost'" in messages
        assert "who" in messages
        assert "bystander" in messages
        assert {f.variable for f in by_rule["C04"]} == {"phantom"}
        assert {f.variable for f in by_rule["C05"]} == {"repro.lintfixture.ghost"}
        assert {f.variable for f in by_rule["C06"]} == {"Ghost"}
        assert len(by_rule["C07"]) == 1
        assert by_rule["C07"][0].severity == "warning"


# --- the PR-5 lying-declaration regressions ------------------------------------

class TestPR5Regressions:
    """Re-declare two real ZooKeeper actions with their pre-PR-5 buggy
    dependency declarations and prove the linter pins each missed read
    to the exact source line."""

    @pytest.fixture(scope="class")
    def zk_schema(self):
        plugin = registry.system_plugin("zookeeper")
        return set(plugin.make_spec("mSpec-3").schema.names)

    def test_node_crash_without_vote_sources(self, zk_schema):
        from repro.zookeeper import faults

        lying = Action(
            "NodeCrash",
            faults.node_crash,
            params={"i": lambda cfg: cfg.servers},
            reads=["state", "crash_budget"],
            writes=[
                "state",
                "zab_state",
                "msgs",
                "crash_budget",
                *faults._VOLATILE_WRITES,
            ],
            # update_sources={"current_vote": [...]} omitted: the bug.
        )
        findings = check_action("zookeeper", lying, zk_schema, SpecAnalyzer())
        assert {f.rule for f in findings} == {"D01"}
        by_var = {f.variable: f for f in findings}
        assert set(by_var) == {"current_epoch", "history"}
        assert by_var["current_epoch"].file.endswith(
            "src/repro/zookeeper/faults.py"
        )
        assert by_var["current_epoch"].line == line_of(
            faults, 'epoch=state["current_epoch"][i]'
        )
        assert by_var["history"].line == line_of(
            faults, 'zxid=last_zxid(state["history"][i])'
        )

    def test_log_request_without_session_source(self, zk_schema):
        from repro.zookeeper import sync_fine

        lying = Action(
            "FollowerSyncProcessorLogRequest",
            sync_fine.follower_sync_processor_log_request,
            params={"i": lambda cfg: cfg.servers},
            reads=["state", "queued_requests", "my_leader", "disconnected"],
            writes=["queued_requests", "history", "msgs"],
            update_sources={
                "history": ["queued_requests"],
                # "accepted_epoch" dropped from the msgs sources: the bug.
                "msgs": ["queued_requests"],
            },
        )
        findings = check_action("zookeeper", lying, zk_schema, SpecAnalyzer())
        assert {f.rule for f in findings} == {"D01"}
        [finding] = findings
        assert finding.variable == "accepted_epoch"
        assert finding.file.endswith("src/repro/zookeeper/sync_fine.py")
        assert finding.line == line_of(
            sync_fine, 'same_session = entry.epoch == state["accepted_epoch"][i]'
        )


# --- fingerprints and baselines ------------------------------------------------

class TestFingerprints:
    def test_stable_across_runs(self):
        first = [f.fingerprint for f in lint_plugin("brokenfix", BrokenPlugin())]
        second = [f.fingerprint for f in lint_plugin("brokenfix", BrokenPlugin())]
        assert first and first == second

    def test_line_independent(self):
        a = make_finding("D01", "s", "action:A", "m", variable="x",
                         file="f.py", line=10)
        b = make_finding("D01", "s", "action:A", "m", variable="x",
                         file="f.py", line=99)
        assert a.fingerprint == b.fingerprint

    def test_new_fingerprints(self):
        findings = lint_plugin("brokenfix", BrokenPlugin())
        report = LintReport(["brokenfix"], findings)
        prints = report.fingerprints()
        baseline = {"findings": [{"fingerprint": p} for p in prints]}
        assert new_fingerprints(report, baseline) == []
        # Drop every entry carrying the first fingerprint: it must
        # resurface as new.
        short = {
            "findings": [
                {"fingerprint": p} for p in prints if p != prints[0]
            ]
        }
        assert new_fingerprints(report, short) == [prints[0]]


# --- CLI -----------------------------------------------------------------------

@pytest.fixture()
def fixture_registry():
    registry.register_system(GoodPlugin())
    registry.register_system(BrokenPlugin())
    yield
    with registry._SYSTEMS_LOCK:
        registry._SYSTEM_PLUGINS.pop("goodfix", None)
        registry._SYSTEM_PLUGINS.pop("brokenfix", None)


class TestLintCLI:
    def test_clean_system_exits_zero(self, fixture_registry, capsys):
        assert main(["lint", "--system", "goodfix"]) == 0
        out = capsys.readouterr()
        assert "0 error(s), 0 warning(s)" in out.err

    def test_findings_without_baseline_exit_one(self, fixture_registry, capsys):
        assert main(["lint", "--system", "brokenfix"]) == 1
        out = capsys.readouterr()
        assert "C02" in out.out

    def test_json_report(self, fixture_registry, capsys):
        assert main(["lint", "--system", "brokenfix", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"
        assert payload["systems"] == ["brokenfix"]
        rules = {f["rule"] for f in payload["findings"]}
        assert "C02" in rules and "C07" in rules

    def test_baseline_gate(self, fixture_registry, capsys, tmp_path):
        assert main(["lint", "--system", "brokenfix", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        # Every finding baselined: gate passes.
        assert main(
            ["lint", "--system", "brokenfix", "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        # Drop every baselined entry for one fingerprint: the gate
        # reports the regression.
        dropped = payload["findings"][0]["fingerprint"]
        payload["findings"] = [
            f for f in payload["findings"] if f["fingerprint"] != dropped
        ]
        baseline.write_text(json.dumps(payload))
        assert main(
            ["lint", "--system", "brokenfix", "--baseline", str(baseline)]
        ) == 2
        assert "NEW lint fingerprints" in capsys.readouterr().err

    def test_invalid_baseline_exits_two(self, fixture_registry, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema": "bogus/9"}))
        assert main(
            ["lint", "--system", "goodfix", "--baseline", str(baseline)]
        ) == 2

    def test_unknown_system_errors(self, capsys):
        assert main(["lint", "--system", "nope"]) == 2


# --- the shipped plugins must lint clean ---------------------------------------

class TestShippedPlugins:
    def test_zookeeper_and_raft_are_clean(self):
        report = lint_systems(["raft", "zookeeper"])
        assert report.errors == []
        assert report.warnings == []


# --- campaign shim (satellite: DeprecationWarning must blame the caller) -------

class TestFromKwargsDeprecation:
    def test_warning_points_at_caller(self):
        from repro.remix.campaign import ConformanceCampaign

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ConformanceCampaign.from_kwargs(seeds=1, traces=1, max_steps=2)
        relevant = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert relevant, "from_kwargs must warn DeprecationWarning"
        assert relevant[0].filename == __file__, (
            "stacklevel must make the warning point at the caller, "
            f"not {relevant[0].filename}"
        )
