"""Unit tests for repro.tla.action."""

import pytest

from repro.tla.action import Action, ActionInstance, ActionLabel, action
from repro.tla.state import Schema, State

SCHEMA = Schema(("x", "y"))


def make_state(x=0, y=0):
    return State.make(SCHEMA, x=x, y=y)


def inc_x(config, state, amount=None):
    if amount is None:
        amount = 1
    if state.x + amount > config["max"]:
        return None
    return {"x": state.x + amount}


class TestAction:
    def test_apply_enabled(self):
        act = Action("IncX", inc_x, reads=["x"], writes=["x"])
        nxt = act.apply({"max": 5}, make_state(), ())
        assert nxt.x == 1

    def test_apply_disabled_returns_none(self):
        act = Action("IncX", inc_x, reads=["x"], writes=["x"])
        assert act.apply({"max": 0}, make_state(), ()) is None

    def test_undeclared_write_rejected(self):
        bad = Action("Bad", lambda cfg, s: {"y": 1}, writes=["x"])
        with pytest.raises(ValueError, match="undeclared"):
            bad.apply({}, make_state(), ())

    def test_bindings_product(self):
        act = Action(
            "P",
            lambda cfg, s, i, j: None,
            params={"i": lambda c: [0, 1], "j": lambda c: ["a", "b"]},
        )
        bindings = list(act.bindings(None))
        assert len(bindings) == 4
        assert (("i", 0), ("j", "a")) in bindings

    def test_bindings_no_params(self):
        act = Action("N", lambda cfg, s: None)
        assert list(act.bindings(None)) == [()]

    def test_binding_values_passed_through(self):
        act = Action(
            "IncBy",
            inc_x,
            params={"amount": lambda c: [1, 2]},
            reads=["x"],
            writes=["x"],
        )
        nxt = act.apply({"max": 5}, make_state(), (("amount", 2),))
        assert nxt.x == 2

    def test_reads_writes_frozen(self):
        act = Action("A", inc_x, reads=["x"], writes=["x"])
        assert act.reads == frozenset({"x"})
        assert act.writes == frozenset({"x"})


class TestActionLabel:
    def test_str_no_binding(self):
        assert str(ActionLabel("Tick")) == "Tick"

    def test_str_with_binding(self):
        label = ActionLabel("Step", (("i", 1), ("j", 2)))
        assert str(label) == "Step(i=1, j=2)"

    def test_args(self):
        assert ActionLabel("Step", (("i", 1),)).args == {"i": 1}

    def test_hashable(self):
        a = ActionLabel("A", (("i", 1),))
        b = ActionLabel("A", (("i", 1),))
        assert a == b and hash(a) == hash(b)


class TestActionInstance:
    def test_label(self):
        act = Action("IncX", inc_x, reads=["x"], writes=["x"])
        inst = ActionInstance(act, (("amount", 2),))
        assert inst.label == ActionLabel("IncX", (("amount", 2),))

    def test_apply(self):
        act = Action("IncX", inc_x, reads=["x"], writes=["x"])
        inst = ActionInstance(act, ())
        assert inst.apply({"max": 3}, make_state()).x == 1


class TestDecorator:
    def test_decorator_builds_action(self):
        @action("Tick", reads=["x"], writes=["x"])
        def tick(config, state):
            return {"x": state.x + 1}

        assert isinstance(tick, Action)
        assert tick.name == "Tick"
        assert tick.apply({}, make_state(), ()).x == 1
