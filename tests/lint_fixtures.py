"""Fixture spec functions and a conformant plugin for the lint tests.

The module-level functions feed ``check_action`` directly; each is the
smallest function that trips (or deliberately avoids tripping) one
analyzer rule.  ``GoodPlugin`` is a complete, well-declared plugin that
must lint clean end to end.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass

from repro.system.plugin import (
    FaultSchedule,
    ROLE_LEADER,
    Scenario,
    SystemPlugin,
)
from repro.tla.action import Action
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State

SCHEMA = Schema(("x", "y", "z"))
SCHEMA_NAMES = set(SCHEMA.names)

GLOBAL_LOG = []


# --- D-rule triggers -----------------------------------------------------------

def reads_x_and_y(config, state, i):
    """Declared with reads=["x"] this under-declares y (D01)."""
    return {"x": state["x"] + state["y"]}


def reads_only_x(config, state, i):
    """Declared with reads=["x", "y"] this over-declares y (D02)."""
    return {"x": state["x"] + 1}


def writes_x_and_z(config, state, i):
    """Declared with writes=["x"] this under-declares z (D03)."""
    return {"x": state["x"] + 1, "z": 0}


def whole_state_read(config, state, i):
    """Hashing the whole state defeats any partial closure (D01/*)."""
    return {"x": hash(state)}


def dynamic_subscript(config, state, i):
    """A computed key is statically unresolvable (D05)."""
    return {"x": state[config.key] + 1}


# --- P-rule triggers -----------------------------------------------------------

def rolls_dice(config, state, i):
    """random breaks replayability (P01)."""
    return {"x": state["x"] + random.randrange(2)}


def iterates_set(config, state, i):
    """Iteration order over a set display is unstable (P02)."""
    total = 0
    for v in {1, 2, 3}:
        total += v * state["x"]
    return {"x": total}


def mutates_global(config, state, i):
    """Appending to a module global leaks across runs (P03)."""
    GLOBAL_LOG.append(i)
    return {"x": state["x"]}


def mutable_update_value(config, state, i):
    """A list in an update dict would alias across states (P04)."""
    return {"x": [state["x"]]}


# --- resolution cases the analyzer must get right (all lint clean) -------------

def alias_read(config, state, i):
    """Reading through a local alias of the state."""
    snap = state
    return {"x": snap["y"] + 1}


def _double_y(st, i):
    return st["y"] * 2


def helper_read(config, state, i):
    """Reads flow back from a helper the state is passed into."""
    return {"x": _double_y(state, i)}


def _bump_yz(st):
    return {"y": st["y"] + 1, "z": st["z"]}


def helper_updates(config, state, i):
    """A helper-built update dict, extended through a local."""
    updates = _bump_yz(state)
    updates["x"] = state["x"]
    return updates


def _pair_read(config, state, i, j):
    return {"x": state["x"] + state["y"]}


def wrapped_pair(config, state, pair):
    """The ``pairwise`` wrapper idiom the ZooKeeper spec uses."""
    return _pair_read(config, state, pair[0], pair[1])


def sorted_set_read(config, state, i):
    """sorted() over a set is order-insensitive: no P02."""
    return {"x": sum(sorted({state["x"], state["y"]}))}


def stdlib_metadata(config, state, i):
    """len()/sorted() on state values are metadata reads, not whole reads."""
    return {"x": len(state["z"])}


# --- a complete, conformant plugin ---------------------------------------------

@dataclass(frozen=True)
class FixtureConfig:
    n_servers: int = 2
    quorum_size: int = 2
    steps: int = 4


def _inc(config, state, i):
    if state["x"] >= config.steps:
        return None
    return {"x": state["x"] + 1}


def _observe(config, state, i):
    return {"y": state["x"]}


def _non_negative(config, state):
    return state["x"] >= 0


def make_fixture_spec(config):
    inc = Action(
        "Inc",
        _inc,
        params={"i": lambda cfg: range(cfg.n_servers)},
        reads=["x"],
        writes=["x"],
    )
    observe = Action(
        "Observe",
        _observe,
        params={"i": lambda cfg: range(cfg.n_servers)},
        reads=["x"],
        writes=["y"],
    )
    return Specification(
        "fixture",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0, z=())],
        [Module("Counter", [inc, observe])],
        [
            Invariant(
                "F-1", "NonNegative", _non_negative, reads=frozenset({"x"})
            )
        ],
        config,
    )


class FixtureDriver(Scenario):
    """Scenario subclass using the constant-tuple loop idiom (all names
    real: must not trip C02)."""

    def warmup(self, leader):
        order = ("Inc", "Observe")
        out = self
        for name in order:
            if out.can(name, i=leader):
                out = out.apply(name, i=leader)
        return out


def _count_up(spec, leader, quorum):
    scenario = FixtureDriver(spec)
    if scenario.can("Inc", i=leader):
        scenario = scenario.apply("Inc", i=leader)
    return scenario


class GoodPlugin(SystemPlugin):
    """Fully declared fixture plugin: must produce zero findings."""

    name = "goodfix"
    title = "lint fixture (conformant)"
    grains = ("tick",)
    scenario_prefixes = {"count-up": _count_up}
    fault_schedules = (
        FaultSchedule("none"),
        FaultSchedule("poke-leader", (("Inc", (("i", ROLE_LEADER),)),)),
    )
    compared_variables = ("x",)
    spec_source_packages = ("repro.tla",)

    def default_config(self):
        return FixtureConfig()

    def make_spec(self, grain, config=None):
        if grain not in self.grains:
            raise KeyError(f"unknown or unmappable grain {grain!r}")
        return make_fixture_spec(config or self.default_config())

    def make_mapping(self, grain):
        if grain not in self.grains:
            raise KeyError(f"unknown or unmappable grain {grain!r}")
        return object()

    def budget_limits(self, config):
        return {"Inc": config.steps}

    def config_from_meta(self, meta):
        return FixtureConfig(**meta.get("config", {}))


# Keep an explicit use of ``copy`` so the import is not flagged unused;
# the D05 fixture below passes state into a stdlib callable.
def stdlib_opaque(config, state, i):
    """state handed to a stdlib function is unresolvable (D05)."""
    return {"x": copy.deepcopy(state)["x"]}
