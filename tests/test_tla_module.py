"""Unit tests for the dependency/interaction analysis (Appendix B)."""

import pytest

from repro.tla.action import Action
from repro.tla.module import (
    Module,
    interaction_variables,
    preserved_variables,
)


def act(name, reads=(), writes=(), sources=None):
    return Action(
        name,
        lambda cfg, s: None,
        reads=reads,
        writes=writes,
        update_sources=sources,
    )


class TestModule:
    def test_reads_writes_union(self):
        module = Module("M", [act("A", reads=["x"], writes=["y"]),
                              act("B", reads=["z"], writes=["w"])])
        assert module.reads() == {"x", "z"}
        assert module.writes() == {"y", "w"}

    def test_duplicate_action_names_rejected(self):
        with pytest.raises(ValueError):
            Module("M", [act("A"), act("A")])

    def test_iteration_and_len(self):
        module = Module("M", [act("A"), act("B")])
        assert len(module) == 2
        assert module.action_names() == ["A", "B"]

    def test_dependency_variables_direct(self):
        module = Module("M", [act("A", reads=["x", "y"])])
        assert module.dependency_variables() == {"x", "y"}

    def test_dependency_variables_transitive(self):
        # A reads x; x is assigned from w -> w is also a dependency
        # variable (Definition 2, rule 3).
        module = Module(
            "M",
            [act("A", reads=["x"], writes=["x"], sources={"x": ["w"]})],
        )
        assert module.dependency_variables() == {"x", "w"}

    def test_dependency_transitivity_chains(self):
        module = Module(
            "M",
            [
                act(
                    "A",
                    reads=["x"],
                    writes=["x", "w"],
                    sources={"x": ["w"], "w": ["v"]},
                )
            ],
        )
        # x <- w <- v
        assert module.dependency_variables() == {"x", "w", "v"}

    def test_sources_of_non_dependency_not_pulled(self):
        module = Module(
            "M",
            [act("A", reads=["x"], writes=["y"], sources={"y": ["q"]})],
        )
        # y is written but never read: q is not a dependency variable.
        assert module.dependency_variables() == {"x"}


class TestInteractionVariables:
    def test_shared_dependency_is_interaction(self):
        m1 = Module("M1", [act("A", reads=["shared", "a"])])
        m2 = Module("M2", [act("B", reads=["shared", "b"])])
        assert interaction_variables([m1, m2]) == {"shared"}

    def test_disjoint_modules_have_none(self):
        m1 = Module("M1", [act("A", reads=["a"])])
        m2 = Module("M2", [act("B", reads=["b"])])
        assert interaction_variables([m1, m2]) == frozenset()

    def test_indirect_flow_rule2(self):
        # M2 assigns y into shared.  Definition 2's transitivity already
        # makes y a dependency variable of M2, so Definition 3 rule 2
        # (which adds V_intr \ D_Mi) leaves the interaction set at
        # {shared}; y is still preserved via D_M2.
        m1 = Module("M1", [act("A", reads=["shared"])])
        m2 = Module(
            "M2",
            [
                act(
                    "B",
                    reads=["shared"],
                    writes=["shared"],
                    sources={"shared": ["y"]},
                )
            ],
        )
        assert "y" in m2.dependency_variables()
        assert interaction_variables([m1, m2]) == {"shared"}
        assert "y" in preserved_variables([m1, m2], m2)

    def test_write_only_producer(self):
        # M2 writes shared (read by M1) without ever reading it.  Per the
        # paper's Definition 3, shared is not an *interaction* variable
        # (it is a dependency variable of M1 only), but it is still
        # preserved whenever M1 is the verification target -- the
        # preservation set is I ∪ D_target.
        m1 = Module("M1", [act("A", reads=["shared"])])
        m2 = Module(
            "M2",
            [
                act("B", reads=["trigger"], writes=["shared"],
                    sources={"shared": ["y"]}),
            ],
        )
        assert interaction_variables([m1, m2]) == frozenset()
        assert "shared" in preserved_variables([m1, m2], m1)

    def test_internal_variable_sources_rule3(self):
        # x is internal to M1 and assigned from q: Definition 2 makes q a
        # dependency variable of M1; rule 3 adds nothing further.
        m1 = Module(
            "M1",
            [
                act("A", reads=["shared", "x"], writes=["x"],
                    sources={"x": ["q"]}),
            ],
        )
        m2 = Module("M2", [act("B", reads=["shared"])])
        assert "q" in m1.dependency_variables()
        assert "q" in preserved_variables([m1, m2], m1)

    def test_preserved_variables(self):
        m1 = Module("M1", [act("A", reads=["shared", "a"])])
        m2 = Module("M2", [act("B", reads=["shared", "b"])])
        assert preserved_variables([m1, m2], m1) == {"shared", "a"}
        assert preserved_variables([m1, m2], m2) == {"shared", "b"}


class TestZooKeeperModules:
    """The analysis applied to the real specification modules."""

    def test_ackepoch_is_an_interaction_variable(self):
        # ackepoch_recv is written by Election/Discovery and read by
        # Synchronization: the key interaction the coarsening preserves.
        from repro.zookeeper.config import ZkConfig
        from repro.zookeeper.specs import SELECTIONS, build_spec

        spec = build_spec("mSpec-1", SELECTIONS["mSpec-1"], ZkConfig())
        interaction = interaction_variables(spec.modules)
        assert "ackepoch_recv" in interaction
        assert "state" in interaction
        assert "zab_state" in interaction

    def test_coarse_module_drops_fle_internals(self):
        from repro.zookeeper.coarse import coarse_election_module
        from repro.zookeeper.config import ZkConfig

        coarse = coarse_election_module(ZkConfig())
        assert "current_vote" not in coarse.writes()
        assert "recv_votes" not in coarse.writes()
