"""The campaign server: event-stream shape, concurrent streamed
requests, resident spec-cache economics, heartbeats, deadlines, and the
offline ``serve --request`` mode."""

import json
import socket
import threading

import pytest

from repro.cli import main
from repro.remix import spec_cache
from repro.remix.request import CampaignRequest
from repro.remix.service import EVENT_SCHEMA, CampaignServer, serve_request

TINY = dict(
    grains=("mSpec-1",),
    scenarios=("election",),
    faults=("none",),
    traces=1,
    max_steps=4,
    seed=7,
)

TERMINAL = {"report", "error"}


def check_stream(events, request_id=None):
    """Assert the stream obeys the ``repro.campaign.event/1`` contract;
    returns the terminal event."""
    assert events, "stream must not be empty"
    # a request rejected before it runs streams a single error event
    if events[0]["event"] != "accepted":
        assert len(events) == 1 and events[0]["event"] == "error"
    assert events[-1]["event"] in TERMINAL
    for event in events:
        assert event["schema"] == EVENT_SCHEMA
        assert event["elapsed"] >= 0
        if request_id is not None:
            assert event["id"] == request_id
        assert event["event"] not in TERMINAL or event is events[-1]
    return events[-1]


def stream_request(address, payload):
    """Send one request line to a server; return the parsed event list."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        return [json.loads(line) for line in reader if line.strip()]


class TestServeRequest:
    def test_stream_shape_and_report(self):
        events = []
        report = serve_request(
            CampaignRequest(**TINY), events.append, request_id=3
        )
        terminal = check_stream(events, request_id=3)
        assert terminal["event"] == "report"
        assert terminal["report"] == report.to_json()
        kinds = [e["event"] for e in events]
        assert kinds.count("cell_done") == report.totals["cells"] > 0

    def test_events_json_serializable(self):
        events = []
        serve_request(CampaignRequest(**TINY), events.append)
        for event in events:
            json.loads(json.dumps(event))  # wire-safe

    def test_campaign_crash_becomes_error_event(self, monkeypatch):
        def explode(request, progress=None):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.remix.service.run_campaign", explode)
        events = []
        report = serve_request(CampaignRequest(**TINY), events.append)
        assert report is None
        terminal = check_stream(events)
        assert terminal["event"] == "error"
        assert "kaboom" in terminal["message"]

    def test_heartbeat_fires_during_long_campaign(self, monkeypatch):
        def slow(request, progress=None):
            import time

            time.sleep(0.25)
            from repro.remix.campaign import run_campaign

            return run_campaign(request, progress=progress)

        monkeypatch.setattr("repro.remix.service.run_campaign", slow)
        events = []
        serve_request(
            CampaignRequest(**TINY), events.append, heartbeat=0.05
        )
        assert any(e["event"] == "heartbeat" for e in events)
        check_stream(events)


class TestCampaignServer:
    @pytest.fixture()
    def server(self):
        server = CampaignServer(heartbeat=0.0)
        server.start()
        yield server
        server.stop()

    def test_second_request_hits_resident_cache(self, server):
        spec_cache.clear()
        request = CampaignRequest(**TINY).to_json()
        first = check_stream(stream_request(server.address, request), 1)
        second = check_stream(stream_request(server.address, request), 2)
        assert first["event"] == second["event"] == "report"
        assert first["spec_cache"].get("misses", 0) > 0
        assert second["spec_cache"].get("hits", 0) > 0
        assert second["spec_cache"].get("misses", 0) == 0
        # resident caches change the economics, not the answer
        for terminal in (first, second):
            terminal["report"]["campaign"].pop("elapsed_seconds", None)
        assert first["report"] == second["report"]

    def test_two_concurrent_requests_both_stream(self, server):
        request = CampaignRequest(**TINY).to_json()
        results = [None, None]

        def client(slot):
            results[slot] = stream_request(server.address, request)

        threads = [
            threading.Thread(target=client, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        ids = set()
        for events in results:
            terminal = check_stream(events)
            assert terminal["event"] == "report"
            ids.add(events[0]["id"])
        assert ids == {1, 2}  # one request id per connection

    def test_bad_request_line_is_error_event(self, server):
        events = stream_request(server.address, {"grains": ["bogus"]})
        terminal = check_stream(events)
        assert terminal["event"] == "error"
        assert "grains: unknown value 'bogus'" in terminal["message"]

    def test_deadline_folds_into_budget(self, server):
        events = stream_request(
            server.address,
            {"request": CampaignRequest(**TINY).to_json(), "deadline": 1e-9},
        )
        terminal = check_stream(events)
        assert terminal["event"] == "report"
        totals = terminal["report"]["totals"]
        assert totals["skipped"] == totals["cells"] > 0
        assert totals["traces"] == 0

    def test_max_requests_stops_server(self):
        server = CampaignServer(heartbeat=0.0, max_requests=1)
        server.start()
        try:
            check_stream(
                stream_request(
                    server.address, CampaignRequest(**TINY).to_json()
                )
            )
            server.serve_forever()  # returns once the quota is served
            with pytest.raises(OSError):
                stream_request(
                    server.address, CampaignRequest(**TINY).to_json()
                )
        finally:
            server.stop()


class TestServeCli:
    def test_offline_request_mode_streams_to_stdout(self, tmp_path, capsys):
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps(CampaignRequest(**TINY).to_json()))
        assert main(["serve", "--request", str(request_file)]) == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        terminal = check_stream(events)
        assert terminal["event"] == "report"

    def test_offline_bad_request_exits_2(self, tmp_path, capsys):
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps({"grains": ["bogus"]}))
        assert main(["serve", "--request", str(request_file)]) == 2
        err = capsys.readouterr().err
        assert "serve:" in err
        assert "grains: unknown value 'bogus'" in err
