"""Compiled successor kernels: emission, differential identity against the
interpreted path, the lint-gated ``--compile auto`` fallback, adaptive
demotion under a live kernel, and the codegen-versioned cache digest."""

import random

import pytest

from repro.checker import ExplorationEngine
from repro.checker.engine import CompiledSpec, compiled_for, kernel_trusted
from repro.tla.action import Action
from repro.tla.batch import FrontierBatch
from repro.tla.codegen import CODEGEN_VERSION, emit_kernel
from repro.tla.module import Module
from repro.tla.spec import Invariant, Specification
from repro.tla.state import Schema, State

SCHEMA = Schema(("x", "y"))


def counter_spec(max_x=4, y_bound=2, constraint=None, name="counter"):
    def inc_x(config, state):
        if state.x >= max_x:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:
            return None
        return {"y": state.y + 1}

    module = Module(
        "counter",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["x", "y"], writes=["y"]),
        ],
    )
    return Specification(
        name,
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= y_bound)],
        None,
        constraint=constraint,
    )


def lying_spec():
    """IncY's guard reads ``x`` but declares only ``y`` -- an untruthful
    dependency declaration that poisons memo/kernel entries."""

    def inc_x(config, state):
        if state.x >= 3:
            return None
        return {"x": state.x + 1}

    def inc_y(config, state):
        if state.y >= state.x:  # reads x, undeclared
            return None
        return {"y": state.y + 1}

    module = Module(
        "liar",
        [
            Action("IncX", inc_x, reads=["x"], writes=["x"]),
            Action("IncY", inc_y, reads=["y"], writes=["y"]),
        ],
    )
    return Specification(
        "liar",
        SCHEMA,
        lambda cfg: [State.make(SCHEMA, x=0, y=0)],
        [module],
        [Invariant("I-1", "y bounded", lambda cfg, s: s.y <= 99)],
        None,
    )


def run_sig(result):
    return (
        result.states_explored,
        result.transitions,
        result.max_depth,
        sorted(
            (v.invariant.full_name, len(v.trace)) for v in result.violations
        ),
    )


class TestEmission:
    def test_kernel_emitted_for_trusted_spec(self):
        core = compiled_for(counter_spec(), compile_mode="on")
        assert core.kernel is not None
        assert core.kernel_source is not None
        assert f"repro kernel v{CODEGEN_VERSION}" in core.kernel_source

    def test_compile_off_stays_interpreted(self):
        core = compiled_for(counter_spec(), compile_mode="off")
        assert core.kernel is None

    def test_non_incremental_never_compiles(self):
        core = compiled_for(counter_spec(), incremental=False, compile_mode="on")
        assert core.kernel is None

    def test_emit_kernel_is_pure_python_source(self):
        core = compiled_for(counter_spec(), compile_mode="on")
        source, fn = emit_kernel(core)
        assert callable(fn)
        compile(source, "<test>", "exec")  # round-trips as real source

    def test_memo_stats_reports_codegen_version(self):
        spec = counter_spec()
        engine = ExplorationEngine(spec, "bfs", max_states=100, compile_mode="on")
        engine.run()
        stats = engine.core.memo_stats()
        assert stats["mode"] == "compiled"
        assert stats["codegen_version"] == CODEGEN_VERSION


class TestFrontierBatch:
    def test_from_entries_accepts_states_and_values(self):
        st = State.make(SCHEMA, x=1, y=0)
        batch = FrontierBatch.from_entries(
            [(7, st, 0, (1, 2)), (8, (2, 0), 1, (3, 4))]
        )
        assert len(batch) == 2
        assert batch.values[0] == st.values
        assert batch.values[1] == (2, 0)
        assert list(batch.entries())[1] == (8, (2, 0), 1, (3, 4))

    def test_single_and_state_materialization(self):
        batch = FrontierBatch.single(5, (1, 1), 0, ())
        assert len(batch) == 1
        assert batch.state(0, SCHEMA).x == 1


class TestDifferentialIdentity:
    @pytest.mark.parametrize("strategy", ["bfs", "dfs"])
    def test_counter_identical(self, strategy):
        sigs = {}
        for mode in ("on", "off"):
            engine = ExplorationEngine(
                counter_spec(max_x=6, y_bound=3),
                strategy,
                max_states=10_000,
                compile_mode=mode,
            )
            sigs[mode] = run_sig(engine.run())
        assert sigs["on"] == sigs["off"]

    def test_random_walk_identical_entropy(self):
        # Same seed, same candidate distributions => same walk, compiled
        # or not.  The space (~465 states at max_x=30) is larger than the
        # budget so both arms stop on the same deterministic state-count
        # cutoff, never on wall-clock.
        sigs = {}
        for mode in ("on", "off"):
            engine = ExplorationEngine(
                counter_spec(max_x=30, y_bound=10 ** 9),
                "random",
                max_states=300,
                seed=11,
                compile_mode=mode,
            )
            sigs[mode] = run_sig(engine.run())
        assert sigs["on"] == sigs["off"]

    def test_fuzzed_counter_family_identical(self):
        rng = random.Random(2024)
        for trial in range(6):
            max_x = rng.randint(2, 9)
            bound = rng.randint(1, 5)
            sigs = {}
            for mode in ("on", "off"):
                engine = ExplorationEngine(
                    counter_spec(max_x=max_x, y_bound=bound),
                    "bfs",
                    max_states=5_000,
                    compile_mode=mode,
                )
                sigs[mode] = run_sig(engine.run())
            assert sigs["on"] == sigs["off"], (trial, max_x, bound)

    def test_expand_batch_matches_interpreted_expand(self):
        spec = counter_spec()
        on = compiled_for(spec, compile_mode="on")
        off = compiled_for(counter_spec(), compile_mode="off")
        assert on.kernel is not None and off.kernel is None
        init = spec.initial_states()[0]
        fp, digests = on.fingerprinter.of_values_with_digests(init.values)
        batch = FrontierBatch.single(fp, init.values, 0, digests)
        (kres,) = on.expand_batch(batch, set(), dedupe=False)
        _, icands = off.expand(init, 0, set(), fp, digests, dedupe=False)
        assert kres[1] == len(icands)
        assert [(c[0], c[1], c[2]) for c in kres[2]] == [
            (c[0], c[1].values, c[2]) for c in icands
        ]


class TestLintGatedCompile:
    def test_lying_spec_is_untrusted(self):
        assert kernel_trusted(lying_spec()) is False
        assert kernel_trusted(counter_spec()) is True

    def test_auto_falls_back_to_interpreted(self):
        core = compiled_for(lying_spec(), compile_mode="auto")
        assert core.kernel is None

    def test_auto_fallback_results_match_interpreted(self):
        sigs = {}
        for mode in ("auto", "off"):
            engine = ExplorationEngine(
                lying_spec(), "bfs", max_states=10_000, compile_mode=mode
            )
            sigs[mode] = run_sig(engine.run())
        assert sigs["auto"] == sigs["off"]

    def test_forced_compile_with_debug_catches_the_lie(self):
        engine = ExplorationEngine(
            lying_spec(),
            "bfs",
            max_states=10_000,
            compile_mode="on",
            debug=True,
        )
        with pytest.raises(AssertionError):
            engine.run()

    def test_bad_compile_mode_rejected(self):
        with pytest.raises(ValueError):
            compiled_for(counter_spec(), compile_mode="sometimes")


class TestAdaptiveDemotionUnderKernel:
    def test_demotion_reemits_kernel_and_preserves_enumeration(self):
        baseline = ExplorationEngine(
            counter_spec(max_x=8, y_bound=4),
            "bfs",
            max_states=10_000,
            compile_mode="on",
        )
        base_sig = run_sig(baseline.run())

        spec = counter_spec(max_x=8, y_bound=4)
        core = compiled_for(spec, compile_mode="on")
        assert core.outcome_groups
        old_kernel = core.kernel
        core._demote([0])
        assert core.kernel is not old_kernel  # re-emitted for the new layout
        assert core.demoted_groups
        engine = ExplorationEngine(
            spec, "bfs", max_states=10_000, compile_mode="on"
        )
        assert run_sig(engine.run()) == base_sig


class TestMaskConstraintMemo:
    def test_declared_constraint_memoized_and_identical_to_undeclared(self):
        def declared(config, state):
            return state.x <= 3

        declared.reads = frozenset({"x"})

        def plain(config, state):
            return state.x <= 3

        sigs = {}
        for label, cap in (("declared", declared), ("plain", plain)):
            spec = counter_spec(max_x=9, constraint=cap)
            engine = ExplorationEngine(
                spec, "bfs", max_states=10_000, compile_mode="on"
            )
            sigs[label] = run_sig(engine.run())
            if label == "declared":
                assert engine.core.constraint_key is not None
                assert len(engine.core.constraint_memo) > 0
            else:
                assert engine.core.constraint_key is None
        assert sigs["declared"] == sigs["plain"]

    def test_declared_mask_is_memoized_and_identical(self):
        def mask(state):
            return state.y == 2

        mask.reads = frozenset({"y"})

        def plain_mask(state):
            return state.y == 2

        sigs = {}
        for label, m in (("declared", mask), ("plain", plain_mask)):
            engine = ExplorationEngine(
                counter_spec(max_x=6, y_bound=1),
                "bfs",
                max_states=10_000,
                mask=m,
                compile_mode="on",
            )
            sigs[label] = run_sig(engine.run())
            if label == "declared":
                assert engine.core.mask_key is not None
                assert len(engine.core.mask_memo) > 0
            else:
                assert engine.core.mask_key is None
        assert sigs["declared"] == sigs["plain"]


class TestCodegenVersionedDigest:
    def test_spec_cache_digest_tracks_codegen_version(self, monkeypatch):
        from repro.remix import spec_cache
        from repro.tla import codegen

        def fresh_digest():
            monkeypatch.setattr(spec_cache, "_SOURCE_DIGEST", None)
            spec_cache._SOURCE_DIGESTS.clear()
            return spec_cache.source_digest("zookeeper")

        before = fresh_digest()
        monkeypatch.setattr(codegen, "CODEGEN_VERSION", codegen.CODEGEN_VERSION + 1)
        after = fresh_digest()
        assert before != after
