"""The system-plugin registry: lookup, isolation and cross-plugin
campaign behaviour (ISSUE 6's tentpole surface)."""

import json

import pytest

from repro.cli import main
from repro.remix import spec_cache
from repro.remix.campaign import CampaignRequest, ConformanceCampaign
from repro.remix.minimize import unreplayable_min_traces
from repro.remix.registry import (
    register_system,
    registered_systems,
    system_plugin,
)
from repro.system.plugin import SystemPlugin


@pytest.fixture(autouse=True)
def fresh_cache():
    spec_cache.clear()
    yield
    spec_cache.clear()


def small_raft_campaign(**overrides):
    kwargs = dict(
        system="raft",
        grains=("raft-coarse",),
        scenarios=("election", "commit"),
        faults=("none", "crash-restart-follower"),
        traces=1,
        max_steps=4,
        directions=("topdown", "bottomup"),
    )
    kwargs.update(overrides)
    return ConformanceCampaign(CampaignRequest(**kwargs))


class TestRegistry:
    def test_builtins_registered(self):
        assert registered_systems() == ["raft", "zookeeper"]

    def test_unknown_system_lists_registered_plugins(self):
        with pytest.raises(KeyError) as err:
            system_plugin("etcd")
        message = err.value.args[0]
        assert "unknown system 'etcd'" in message
        assert "raft" in message and "zookeeper" in message

    def test_unknown_system_cli_exit_2(self, capsys):
        assert main(["campaign", "--system", "etcd"]) == 2
        err = capsys.readouterr().err
        assert "unknown system 'etcd'" in err
        assert "zookeeper" in err

    def test_register_replaces_and_rejects_unnamed(self):
        class Stub(SystemPlugin):
            name = "stub-system"
            title = "stub"

        plugin = register_system(Stub())
        try:
            assert system_plugin("stub-system") is plugin
            replacement = register_system(Stub())
            assert system_plugin("stub-system") is replacement
        finally:
            from repro.remix import registry

            registry._SYSTEM_PLUGINS.pop("stub-system", None)
        with pytest.raises(ValueError):
            register_system(SystemPlugin())

    def test_plugin_axes_are_consistent(self):
        for name in registered_systems():
            plugin = system_plugin(name)
            assert plugin.name == name
            assert plugin.grains
            assert "none" in plugin.fault_names()
            for fault in plugin.fault_names():
                assert plugin.fault_schedule(fault).name == fault
            with pytest.raises(KeyError):
                plugin.fault_schedule("no-such-fault")

    def test_config_meta_round_trips(self):
        for name in registered_systems():
            plugin = system_plugin(name)
            config = plugin.campaign_config()
            meta = {"config": plugin.config_meta(config)}
            assert plugin.config_from_meta(meta) == config


class TestDigestIsolation:
    def test_source_digests_differ_per_system(self):
        assert spec_cache.source_digest("zookeeper") != spec_cache.source_digest(
            "raft"
        )

    def test_disk_entries_live_in_per_system_directories(self, tmp_path):
        spec_cache.set_disk_cache_dir(str(tmp_path / "disk"))
        try:
            config_zk = system_plugin("zookeeper").campaign_config()
            config_raft = system_plugin("raft").campaign_config()
            spec_cache.cached_prefix(
                "mSpec-1", config_zk, "election", "none", 2, 0
            )
            spec_cache.cached_prefix(
                "raft-coarse",
                config_raft,
                "election",
                "none",
                2,
                0,
                system="raft",
            )
            subdirs = sorted(p.name for p in (tmp_path / "disk").iterdir())
            assert len(subdirs) == 2
            zk_dir = f"zookeeper-{spec_cache.source_digest('zookeeper')}"
            raft_dir = f"raft-{spec_cache.source_digest('raft')}"
            assert subdirs == sorted([raft_dir, zk_dir])
        finally:
            spec_cache.set_disk_cache_dir(None)

    def test_memory_cache_keys_include_system(self):
        config = system_plugin("raft").campaign_config()
        spec = spec_cache.cached_spec("raft-coarse", config, system="raft")
        again = spec_cache.cached_spec("raft-coarse", config, system="raft")
        assert spec is again
        with pytest.raises(KeyError):
            # the same grain name does not resolve through another plugin
            spec_cache.cached_spec("raft-coarse", None, system="zookeeper")


class TestRaftCampaign:
    def test_raft_campaign_finds_planted_bugs(self):
        report = small_raft_campaign(shrink=True).run()
        totals = report.totals
        assert totals["distinct_findings"] > 0
        assert totals["bottomup_findings"] > 0
        variables = {
            finding.get("variable")
            for finding in report.findings
            if finding["kind"] == "state_mismatch"
        }
        assert "voted_for" in variables
        assert report.meta["system"] == "raft"
        assert unreplayable_min_traces(report.to_json()) == []

    def test_raft_campaign_workers_identical(self):
        seq = small_raft_campaign(workers=1, shrink=True).run().to_json()
        par = small_raft_campaign(workers=2, shrink=True).run().to_json()
        for key in ("cells", "findings", "totals"):
            assert seq[key] == par[key], key

    def test_raft_report_is_reproducible(self):
        first = small_raft_campaign().run().to_json()
        second = small_raft_campaign().run().to_json()
        for key in ("cells", "findings", "totals"):
            assert json.dumps(first[key], sort_keys=True) == json.dumps(
                second[key], sort_keys=True
            ), key

    def test_fixed_variant_conforms(self):
        from repro.raft.config import FIXED_VARIANT

        plugin = system_plugin("raft")
        config = plugin.campaign_config().with_variant(FIXED_VARIANT)
        report = small_raft_campaign(config=config).run()
        assert report.totals["distinct_findings"] == 0

    def test_zookeeper_default_system_unchanged(self):
        campaign = ConformanceCampaign(
            CampaignRequest(
                grains=("mSpec-1",),
                scenarios=("election",),
                faults=("none",),
                traces=1,
                max_steps=2,
            )
        )
        report = campaign.run()
        assert report.meta["system"] == "zookeeper"
        assert campaign.jobs()[0].system == "zookeeper"
