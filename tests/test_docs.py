"""The docs stay honest: links resolve and walkthrough commands run."""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)
ANY_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def github_slug(heading):
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    return {github_slug(h) for h in HEADING_RE.findall(path.read_text())}


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    assert DOC_FILES, "doc set is empty"
    prose = CODE_SPAN_RE.sub("", ANY_FENCE_RE.sub("", doc.read_text()))
    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            (doc.parent / path_part).resolve() if path_part else doc
        )
        assert resolved.exists(), f"{doc.name}: broken link {target}"
        if fragment and resolved.suffix == ".md":
            assert fragment in anchors_of(resolved), (
                f"{doc.name}: missing anchor {target}"
            )


def walkthrough_commands():
    text = (ROOT / "docs" / "plugin-authoring.md").read_text()
    commands = []
    for block in FENCE_RE.findall(text):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("python"):
                commands.append(line)
    return commands


def test_walkthrough_has_commands():
    commands = walkthrough_commands()
    assert any("systems" in c for c in commands)
    assert any("--system raft" in c for c in commands)


@pytest.mark.parametrize(
    "command", walkthrough_commands(), ids=lambda c: c[:60]
)
def test_walkthrough_commands_run_as_written(command):
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    result = subprocess.run(
        [sys.executable, *command.split()[1:]],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=ROOT,
        env=env,
    )
    assert result.returncode == 0, (
        f"{command!r} failed:\n{result.stdout}\n{result.stderr}"
    )
