"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.tla.values import Rec, Txn, Zxid
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.schema import initial_state


@pytest.fixture(autouse=True, scope="session")
def _isolated_spec_cache(tmp_path_factory):
    """Point the on-disk spec cache at a per-session temp directory so
    test runs never touch (or depend on) ~/.cache; disk-layer tests
    override the location themselves via spec_cache.set_disk_cache_dir."""
    import os

    os.environ.setdefault(
        "REPRO_SPEC_CACHE_DIR", str(tmp_path_factory.mktemp("spec-cache"))
    )
    yield


def txn(epoch, counter, value=None):
    """Shorthand transaction constructor."""
    return Txn(Zxid(epoch, counter), value if value is not None else counter)


def zk_state(config=None, **overrides):
    """The ZooKeeper initial state with some variables overridden."""
    config = config or ZkConfig()
    state = initial_state(config)
    if overrides:
        state = state.set(**overrides)
    return state


def established(epoch, initial=(), committed=()):
    """A g_established record."""
    return Rec(epoch=epoch, initial=tuple(initial), committed=tuple(committed))


@pytest.fixture
def config():
    return ZkConfig()


@pytest.fixture
def small_config():
    """The standard small model-checking configuration used by the bug
    reproduction tests."""
    return ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)
