"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.tla.values import Rec, Txn, Zxid
from repro.zookeeper.config import ZkConfig
from repro.zookeeper.schema import initial_state


def txn(epoch, counter, value=None):
    """Shorthand transaction constructor."""
    return Txn(Zxid(epoch, counter), value if value is not None else counter)


def zk_state(config=None, **overrides):
    """The ZooKeeper initial state with some variables overridden."""
    config = config or ZkConfig()
    state = initial_state(config)
    if overrides:
        state = state.set(**overrides)
    return state


def established(epoch, initial=(), committed=()):
    """A g_established record."""
    return Rec(epoch=epoch, initial=tuple(initial), committed=tuple(committed))


@pytest.fixture
def config():
    return ZkConfig()


@pytest.fixture
def small_config():
    """The standard small model-checking configuration used by the bug
    reproduction tests."""
    return ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)
