"""Smoke tests: the example scripts run end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_example(name, timeout=300):
    # The examples import repro; make the src/ layout visible to the
    # child process whether or not the package is installed.
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "ZK-4394" in result.stdout
    assert "NullPointerException" in result.stdout


def test_conformance_checking():
    result = run_example("conformance_checking.py")
    assert result.returncode == 0, result.stderr
    assert "0 discrepancies" in result.stdout
    assert "current_epoch" in result.stdout


def test_raft_quickstart():
    result = run_example("raft_quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "voted_for" in result.stdout
    assert "commit_index" in result.stdout
    assert "NodeRestart" in result.stdout


@pytest.mark.slow
def test_custom_composition():
    result = run_example("custom_composition.py", timeout=420)
    assert result.returncode == 0, result.stderr
    assert "I-8" in result.stdout
    assert "CompositionError" in result.stdout


@pytest.mark.slow
def test_protocol_improvement():
    result = run_example("protocol_improvement.py", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "passes all ten protocol invariants" in result.stdout
    assert "VIOLATES I-8" in result.stdout


@pytest.mark.slow
def test_verify_bug_fix():
    result = run_example("verify_bug_fix.py", timeout=900)
    assert result.returncode == 0, result.stderr
    assert "REJECTED" in result.stdout
    assert "PASSED" in result.stdout
