#!/usr/bin/env python
"""Conformance checking between specification and implementation (§3.4).

The conformance checker randomly explores the model-level state space,
replays every trace deterministically against the implementation through
the coordinator, and compares the states after each step.  This example:

1. shows a clean run (the shipped spec matches the shipped simulator);
2. injects a code-level divergence ("the epoch write is lost") and shows
   the checker pinpointing the differing variable;
3. shows the trace that exposes the divergence, which is what a developer
   would debug (§3.5.3's deterministic replay).

Run:  python examples/conformance_checking.py
"""

from repro.impl import Ensemble
from repro.remix import ConformanceChecker, system_plugin
from repro.zookeeper import V391, ZkConfig


def main():
    plugin = system_plugin("zookeeper")
    config = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)
    spec = plugin.make_spec("mSpec-3", config)
    mapping = plugin.make_mapping("mSpec-3")

    print("1) Conformance of mSpec-3 against the implementation:")
    checker = ConformanceChecker(
        spec,
        None,
        plugin.ensemble_factory(config),
        seed=42,
        mapping=mapping,
        compared_variables=plugin.compared_variables,
    )
    report = checker.run(traces=40, max_steps=25)
    print(f"   {report.summary()}")
    assert report.conforms

    print("\n2) Same check against an implementation whose epoch write "
          "is lost (an injected 'wrong variable assignment'):")
    broken = ConformanceChecker(
        spec,
        None,
        lambda: Ensemble(3, V391, divergence="skip_epoch_update"),
        seed=42,
        mapping=mapping,
        compared_variables=plugin.compared_variables,
    )
    report = broken.run(traces=40, max_steps=25)
    print(f"   {report.summary()}")
    assert not report.conforms

    first = next(
        d for d in report.discrepancies if d.kind == "state_mismatch"
    )
    print(f"\n3) First discrepancy, as a developer would see it:")
    print(f"   {first}")
    print("\n   The differing variable (current_epoch) points straight at "
          "the divergent code path -- the specification or the code must "
          "be revised until conformance passes (§3.4).")


if __name__ == "__main__":
    main()
