#!/usr/bin/env python
"""Improving the Zab protocol (§5.4).

The root cause of the Synchronization bug family is that ZooKeeper cannot
implement the protocol's *atomic* epoch+history update.  The paper's fix:
drop the atomicity requirement but mandate the ORDER -- history first,
epoch second.  This example model-checks all three protocol variants:

- original     : the atomic Step f.2.1 of the Zab paper  -> passes
- improved     : non-atomic, history-before-epoch (§5.4) -> passes
- epoch_first  : non-atomic, epoch-before-history (what ZooKeeper
                 implemented)                            -> violates I-8

Run:  python examples/protocol_improvement.py
"""

from repro.checker import BFSChecker
from repro.zab import ZabConfig, zab_spec


def main():
    for variant in ("original", "improved", "epoch_first"):
        config = ZabConfig(
            max_txns=1, max_crashes=2, max_epoch=3, variant=variant
        )
        result = BFSChecker(
            zab_spec(config), max_states=200_000, max_time=180
        ).run()
        if result.found_violation:
            violation = result.first_violation
            print(f"{variant:12s}: VIOLATES "
                  f"{violation.invariant.ident} "
                  f"({violation.invariant.name}) at depth {violation.depth}")
            print("  counterexample:")
            for label in violation.trace.labels:
                print(f"    {label}")
        else:
            status = "exhausted" if result.completed else "within budget"
            print(f"{variant:12s}: passes all ten protocol invariants "
                  f"({result.states_explored} states {status})")


if __name__ == "__main__":
    main()
