#!/usr/bin/env python
"""Composing your own mixed-grained specification with the Remix registry.

Table 1's mSpec-1..4 are just predefined granularity selections; the
registry lets you compose any compatible combination -- the paper's "help
the model checker focus on target modules" knob.  This example composes a
custom specification (coarse election, fine-atomic sync, baseline
broadcast -- i.e. mSpec-2 -- against a *bigger* fault budget), checks it,
and demonstrates the composability guardrails.

Run:  python examples/custom_composition.py
"""

from repro.checker import BFSChecker
from repro.remix import SpecRegistry
from repro.tla.composition import CompositionError
from repro.tla.module import interaction_variables
from repro.zookeeper import ZkConfig, zk4394_mask


def main():
    registry = SpecRegistry()
    print("Registered module granularities:")
    for module in registry.modules():
        print(f"  {module}: {', '.join(registry.granularities(module))}")

    selection = {
        "Election": "coarsened",
        "Discovery": "coarsened",
        "Synchronization": "fine_atomic",
        "Broadcast": "baseline",
    }
    config = ZkConfig(max_txns=1, max_crashes=2, max_partitions=0, max_epoch=3)
    spec = registry.compose("my-mixed-spec", selection, config)
    print(f"\nComposed {spec.name}: "
          f"{sum(len(m) for m in spec.modules)} actions, "
          f"{len(spec.invariants)} auto-selected invariants")

    interaction = interaction_variables(spec.modules)
    print(f"Interaction variables (Appendix B): "
          f"{', '.join(sorted(v for v in interaction if not v.startswith('g_')))}")

    print("\nIncompatible selections are rejected:")
    try:
        registry.compose(
            "broken",
            dict(selection, Broadcast="fine_concurrent"),
            config,
        )
    except CompositionError as exc:
        print(f"  CompositionError: {exc}")

    print("\nModel checking the composition (this finds ZK-4643) ...")
    result = BFSChecker(
        spec, max_states=2_000_000, max_time=300, mask=zk4394_mask
    ).run()
    print(f"  {result.summary()}")
    if result.found_violation:
        violation = result.first_violation
        print(f"  -> {violation.invariant.ident} "
              f"({violation.invariant.name}) at depth {violation.depth}")


if __name__ == "__main__":
    main()
