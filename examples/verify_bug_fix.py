#!/usr/bin/env python
"""Verifying bug-fix pull requests with mixed-grained specifications (§5.3).

The paper verified four ZooKeeper PRs that attempted to fix the
Synchronization bugs; every one of them still violated an invariant
(Table 6).  This example replays that workflow:

1. each PR is a small update of the mSpec-3+ specification (a
   SpecVariant diff);
2. the model checker searches for an invariant violation;
3. the §5.4 resolution (history-before-epoch ordering + synchronous
   logging/commit + fixed shutdown) passes.

Run:  python examples/verify_bug_fix.py
"""

from repro.checker import BFSChecker
from repro.zookeeper import ZkConfig, final_fix_spec, pr_spec, zk4394_mask
from repro.zookeeper.specs import PR_VARIANTS

CONFIG = ZkConfig(max_txns=2, max_crashes=2, max_partitions=0, max_epoch=3)


def check(spec, max_states=300_000, max_time=120):
    return BFSChecker(
        spec, max_states=max_states, max_time=max_time, mask=zk4394_mask
    ).run()


def main():
    print("Verifying the four fix PRs on top of mSpec-3+ (Table 6):\n")
    for pr in PR_VARIANTS:
        spec = pr_spec(pr, CONFIG)
        result = check(spec)
        verdict = (
            f"REJECTED: violates {result.first_violation.invariant.ident} "
            f"at depth {result.first_violation.depth}"
            if result.found_violation
            else "no violation found within budget"
        )
        print(f"  {pr}: {verdict}")
        print(f"    ({result.states_explored} states, "
              f"{result.elapsed_seconds:.1f}s)")

    print("\nVerifying the holistic §5.4 resolution ...")
    result = check(final_fix_spec(CONFIG), max_states=150_000)
    assert not result.found_violation
    print(f"  PASSED: {result.states_explored} states explored, "
          f"no invariant violated ({result.elapsed_seconds:.1f}s)")


if __name__ == "__main__":
    main()
