#!/usr/bin/env python
"""Raft quickstart: a second protocol through the same harness.

The campaign machinery (matrix scheduling, deterministic replay, trace
shrinking) is system-agnostic; protocols plug in behind
``repro.remix.system_plugin``.  This example runs a small conformance
campaign against the bundled toy Raft implementation -- whose restart
path has two planted bugs (a forgotten durable vote and a retained
volatile commit index) -- and prints the minimized repro traces.

Run:  python examples/raft_quickstart.py
"""

from repro.remix import CampaignRequest, run_campaign, system_plugin


def main():
    plugin = system_plugin("raft")
    print(f"System plugin: {plugin.name} -- {plugin.title}")
    print(f"  grains:    {', '.join(plugin.grains)}")
    print(f"  scenarios: {', '.join(plugin.scenario_names())}")
    print(f"  faults:    {', '.join(plugin.fault_names())}")

    print("\nCampaign: commit scenario x crash-restart-follower fault, "
          "both directions, with shrinking ...")
    request = CampaignRequest(
        system="raft",
        grains=("raft-coarse",),
        scenarios=("commit",),
        faults=("crash-restart-follower",),
        directions=("topdown", "bottomup"),
        traces=2,
        max_steps=6,
        shrink=True,
    )
    report = run_campaign(request)
    totals = report.totals
    print(f"  {totals['cells']} cells, {totals['traces']} traces, "
          f"{totals['distinct_findings']} distinct findings "
          f"({totals['bottomup_findings']} bottom-up)")

    assert totals["distinct_findings"] > 0, "expected the planted bugs"
    variables = {
        finding.get("variable")
        for finding in report.findings
        if finding["kind"] == "state_mismatch"
    }
    print(f"\nDiverging variables at the restart step: {sorted(variables)}")
    assert "voted_for" in variables, "bug 1: the vote was never persisted"
    assert "commit_index" in variables, "bug 2: stale volatile commit index"

    print("\nMinimized repros (model actions -> divergence):")
    for finding in report.findings[:4]:
        min_trace = finding.get("min_trace") or {}
        if min_trace.get("status") != "ok":
            continue
        labels = " -> ".join(
            f"{label['name']}({', '.join(f'{k}={v}' for k, v in label['args'].items())})"
            for label in min_trace["labels"]
        )
        print(f"  [{finding['fingerprint']}] {labels}")
        print(f"      {finding['detail']}")

    print("\nThe same matrix, shrinker and report pipeline that checks "
          "ZooKeeper found Raft's planted restart bugs -- no checker "
          "changes required.")


if __name__ == "__main__":
    main()
