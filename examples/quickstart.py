#!/usr/bin/env python
"""Quickstart: find a real ZooKeeper bug by model checking.

Builds the mixed-grained specification mSpec-1 (coarse Election+Discovery,
baseline Synchronization/Broadcast), model-checks it with BFS, and hits
ZK-4394: a COMMIT that arrives between NEWLEADER and UPTODATE cannot be
matched to a packet and the follower throws a NullPointerException.

The violating model trace is then replayed *deterministically* against the
bundled ZooKeeper implementation simulator, confirming the bug at the code
level -- the full Remix workflow of the paper in a few lines.

Run:  python examples/quickstart.py
"""

from repro.checker import BFSChecker
from repro.remix import ConformanceChecker, system_plugin
from repro.zookeeper import ZkConfig


def main():
    # Every protocol reaches the harness through its registered system
    # plugin; ZooKeeper is simply the default one.
    plugin = system_plugin("zookeeper")

    # A small TLC-style configuration: 3 servers, 1 transaction,
    # 1 crash, epochs bounded at 3.
    config = ZkConfig(max_txns=1, max_crashes=1, max_partitions=0, max_epoch=3)

    print("Composing mSpec-1 (Table 1) ...")
    spec = plugin.make_spec("mSpec-1", config)
    print(f"  modules: {[m.name for m in spec.modules]}")
    print(f"  invariants: {len(spec.invariants)} "
          f"({sum(1 for i in spec.invariants if i.source == 'protocol')} "
          f"protocol + "
          f"{sum(1 for i in spec.invariants if i.source == 'code')} code)")

    print("\nModel checking (BFS, stop at first violation) ...")
    result = BFSChecker(spec, max_states=100_000, max_time=120).run()
    print(f"  {result.summary()}")

    violation = result.first_violation
    assert violation is not None, "expected to find ZK-4394"
    print(f"\nFound: {violation}")
    print(violation.trace.describe())

    print("\nConfirming at the code level (deterministic replay) ...")
    checker = ConformanceChecker(
        spec,
        None,
        plugin.ensemble_factory(config),
        mapping=plugin.make_mapping("mSpec-1"),
        compared_variables=plugin.compared_variables,
    )
    report = checker.confirm_violation(violation.trace)
    assert report is not None
    print(f"  {report}")
    print("\nThe model-level violation reproduces in the implementation: "
          "this is ZooKeeper bug ZK-4394.")


if __name__ == "__main__":
    main()
